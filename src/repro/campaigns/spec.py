"""Declarative campaign specifications and their TOML front-end.

A :class:`CampaignSpec` describes a whole experiment campaign — one base
:class:`ScenarioSpec` (everything is named through the registries:
topology, workload, controllers) plus a grid of :class:`FactorAxis`
overrides — and :meth:`CampaignSpec.expand` turns it into the full
cartesian list of :class:`CampaignCell` work units.  Expansion is pure
and deterministic: the same spec always yields the same cells in the
same order, each with the same derived seed, so a campaign can be
killed, re-expanded and resumed without ever re-running a finished cell.

Cell seeds are derived per cell id through
:meth:`repro.utils.seeding.RngRegistry.child` (``"cell/<cell_id>"``
under the campaign seed), never from cell *position*: inserting a new
factor value shifts positions but leaves every existing cell's seed —
and therefore its results — untouched.

Specs can be written in Python or loaded from TOML via
:func:`load_campaign_toml`::

    [campaign]
    name = "network-scaling"
    seed = 17
    repetitions = 5

    [scenario]
    topology = "gtitm"
    workload = "constant"
    controllers = ["OL_GD", "Pri_GD", "Greedy_GD"]
    horizon = 60

    [[factors]]
    path = "n_stations"
    values = [30, 60, 90]
"""

from __future__ import annotations

import dataclasses
import itertools
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.registry import CONTROLLERS
from repro.mec.registry import TOPOLOGIES
from repro.utils.seeding import RngRegistry, require_seed
from repro.utils.validation import require_positive
from repro.workload.registry import WORKLOADS

__all__ = [
    "CampaignError",
    "OutageSpec",
    "ScenarioSpec",
    "FactorAxis",
    "CampaignCell",
    "CampaignSpec",
    "load_campaign_toml",
]


class CampaignError(ValueError):
    """An invalid campaign spec, or a campaign directory misuse."""


@dataclass(frozen=True)
class OutageSpec:
    """One scripted station failure applied inside every repetition."""

    station: int
    start: int
    duration: int
    remaining_fraction: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-named experiment setting (a single campaign cell's world).

    Every component is referenced by registry name — the topology from
    :data:`repro.mec.TOPOLOGIES`, the demand model from
    :data:`repro.workload.WORKLOADS`, the controllers from
    :data:`repro.core.CONTROLLERS` — so the spec *is* the identity of
    what ran, and the built objects are checked against it.
    """

    controllers: Tuple[str, ...]
    horizon: int
    topology: str = "gtitm"
    workload: str = "constant"
    n_stations: Optional[int] = None
    n_services: int = 4
    n_requests: int = 30
    n_hotspots: int = 5
    drift_ms: float = 0.5
    #: ``c_unit = min capacity / (headroom * mean basic demand)``; ``None``
    #: keeps the topology's own calibration.
    capacity_headroom: Optional[float] = 2.0
    topology_options: Mapping[str, Any] = field(default_factory=dict)
    workload_options: Mapping[str, Any] = field(default_factory=dict)
    #: Per-controller construction options, keyed by controller name.
    controller_options: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )
    outages: Tuple[OutageSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.controllers:
            raise CampaignError("scenario needs at least one controller")
        object.__setattr__(self, "controllers", tuple(self.controllers))
        object.__setattr__(
            self,
            "outages",
            tuple(
                o if isinstance(o, OutageSpec) else OutageSpec(**o)
                for o in self.outages
            ),
        )
        require_positive("horizon", self.horizon)
        require_positive("n_services", self.n_services)
        require_positive("n_requests", self.n_requests)
        require_positive("n_hotspots", self.n_hotspots)

    def validate_names(self) -> None:
        """Check every referenced name against its registry (early error)."""
        if self.topology not in TOPOLOGIES:
            raise CampaignError(
                f"unknown topology {self.topology!r}; "
                f"registered: {list(TOPOLOGIES.names())}"
            )
        if self.workload not in WORKLOADS:
            raise CampaignError(
                f"unknown workload {self.workload!r}; "
                f"registered: {list(WORKLOADS.names())}"
            )
        for name in self.controllers:
            if name not in CONTROLLERS:
                raise CampaignError(
                    f"unknown controller {name!r}; "
                    f"registered: {list(CONTROLLERS.names())}"
                )
        for name in self.controller_options:
            if name not in self.controllers:
                raise CampaignError(
                    f"controller_options for {name!r}, which is not in "
                    f"controllers {list(self.controllers)}"
                )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable identity payload (order-stable)."""
        payload = dataclasses.asdict(self)
        payload["controllers"] = list(self.controllers)
        payload["outages"] = [o.to_payload() for o in self.outages]
        for key in ("topology_options", "workload_options"):
            payload[key] = dict(payload[key])
        payload["controller_options"] = {
            name: dict(options)
            for name, options in payload["controller_options"].items()
        }
        return payload


@dataclass(frozen=True)
class FactorAxis:
    """One swept dimension: a dotted path into :class:`ScenarioSpec`.

    ``path`` addresses a scenario field (``"n_stations"``), an option-dict
    entry (``"workload_options.jitter"``) or a per-controller option
    (``"controller_options.OL_GD.learning_rate"``).
    """

    path: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise CampaignError("factor path must be non-empty")
        if not self.values:
            raise CampaignError(f"factor {self.path!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))
        if len(set(map(repr, self.values))) != len(self.values):
            raise CampaignError(f"factor {self.path!r} repeats a value")


_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(value: Any) -> str:
    """Filesystem-safe rendering of one factor value."""
    text = format(value, "g") if isinstance(value, float) else str(value)
    return _SLUG_UNSAFE.sub("_", text) or "_"


def _apply_override(scenario: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """A copy of ``scenario`` with the field at dotted ``path`` replaced."""
    head, _, rest = path.partition(".")
    if not hasattr(scenario, head):
        raise CampaignError(
            f"factor path {path!r} does not name a scenario field "
            f"(no attribute {head!r})"
        )
    if not rest:
        return dataclasses.replace(scenario, **{head: value})
    current = getattr(scenario, head)
    if not isinstance(current, Mapping):
        raise CampaignError(
            f"factor path {path!r} descends into {head!r}, "
            f"which is not an options mapping"
        )
    updated: Dict[str, Any] = {k: v for k, v in current.items()}
    key, _, leaf = rest.partition(".")
    if leaf:  # controller_options.<name>.<option>
        inner = dict(updated.get(key, {}))
        inner[leaf] = value
        updated[key] = inner
    else:
        updated[key] = value
    return dataclasses.replace(scenario, **{head: updated})


@dataclass(frozen=True)
class CampaignCell:
    """One expanded work unit of a campaign: a scenario plus its seed."""

    cell_id: str
    index: int
    overrides: Tuple[Tuple[str, Any], ...]
    scenario: ScenarioSpec
    seed: int


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded factor grid over one base scenario."""

    name: str
    seed: int
    repetitions: int
    scenario: ScenarioSpec
    factors: Tuple[FactorAxis, ...] = ()
    confidence: float = 0.95
    demands_known: bool = True

    def __post_init__(self) -> None:
        if not self.name or _SLUG_UNSAFE.search(self.name):
            raise CampaignError(
                f"campaign name {self.name!r} must be a non-empty "
                "[A-Za-z0-9._-] slug"
            )
        require_seed(self.seed)
        require_positive("repetitions", self.repetitions)
        object.__setattr__(self, "factors", tuple(self.factors))
        paths = [axis.path for axis in self.factors]
        if len(set(paths)) != len(paths):
            raise CampaignError(f"duplicate factor paths: {sorted(paths)}")

    @property
    def n_cells(self) -> int:
        n = 1
        for axis in self.factors:
            n *= len(axis.values)
        return n

    def expand(self) -> Tuple[CampaignCell, ...]:
        """The full cartesian cell list, deterministic and validated.

        Cells are ordered with the *last* declared factor fastest
        (``itertools.product`` order).  Each cell's seed is derived from
        the campaign seed and the cell id, never from its position.
        """
        self.scenario.validate_names()
        root = RngRegistry(self.seed)
        cells = []
        grids = [axis.values for axis in self.factors]
        for index, combo in enumerate(itertools.product(*grids)):
            overrides = tuple(
                (axis.path, value) for axis, value in zip(self.factors, combo)
            )
            scenario = self.scenario
            for path, value in overrides:
                scenario = _apply_override(scenario, path, value)
            scenario.validate_names()
            cell_id = (
                "-".join(
                    f"{path.split('.')[-1]}={_slug(value)}"
                    for path, value in overrides
                )
                or "base"
            )
            cells.append(
                CampaignCell(
                    cell_id=cell_id,
                    index=index,
                    overrides=overrides,
                    scenario=scenario,
                    seed=root.child(f"cell/{cell_id}").seed,
                )
            )
        ids = [cell.cell_id for cell in cells]
        if len(set(ids)) != len(ids):
            duplicates = sorted({i for i in ids if ids.count(i) > 1})
            raise CampaignError(
                f"factor values collide into duplicate cell ids {duplicates}; "
                "make the values distinguishable after slugging"
            )
        return tuple(cells)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable identity payload of the whole campaign."""
        return {
            "name": self.name,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "confidence": self.confidence,
            "demands_known": self.demands_known,
            "scenario": self.scenario.to_payload(),
            "factors": [
                {"path": axis.path, "values": list(axis.values)}
                for axis in self.factors
            ],
        }


def _load_toml(path: Path) -> Dict[str, Any]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - depends on interpreter
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError as error:
            raise RuntimeError(
                "loading TOML campaign specs needs Python 3.11+ (tomllib) "
                "or the 'tomli' package; alternatively build the "
                "CampaignSpec in Python directly"
            ) from error
    with open(path, "rb") as handle:
        return tomllib.load(handle)


def load_campaign_toml(path: Union[str, Path]) -> CampaignSpec:
    """Parse a TOML campaign file into a validated :class:`CampaignSpec`.

    Expected tables: ``[campaign]`` (name/seed/repetitions and the
    optional confidence/demands_known), ``[scenario]`` (passed to
    :class:`ScenarioSpec`, with ``[[scenario.outages]]`` rows and the
    ``*_options`` sub-tables inline), and ``[[factors]]`` rows with
    ``path``/``values``.
    """
    path = Path(path)
    payload = _load_toml(path)
    unknown = set(payload) - {"campaign", "scenario", "factors"}
    if unknown:
        raise CampaignError(
            f"{path}: unknown top-level tables {sorted(unknown)} "
            "(expected campaign/scenario/factors)"
        )
    try:
        campaign = dict(payload["campaign"])
        scenario_payload = dict(payload["scenario"])
    except KeyError as error:
        raise CampaignError(f"{path}: missing table {error}") from error
    scenario_payload["controllers"] = tuple(
        scenario_payload.get("controllers", ())
    )
    scenario_payload["outages"] = tuple(
        OutageSpec(**row) for row in scenario_payload.pop("outages", ())
    )
    factors = tuple(
        FactorAxis(path=row["path"], values=tuple(row["values"]))
        for row in payload.get("factors", ())
    )
    try:
        scenario = ScenarioSpec(**scenario_payload)
        spec = CampaignSpec(
            scenario=scenario, factors=factors, **campaign
        )
    except TypeError as error:
        raise CampaignError(f"{path}: {error}") from error
    spec.expand()  # validates registry names and cell-id uniqueness
    return spec
