"""Observability: process-local metrics, scoped timers, JSONL tracing.

Telemetry is **off by default** and costs a near-zero no-op check on the
instrumented hot paths (``benchmarks/bench_obs_overhead.py`` proves the
<5% per-slot budget).  Enable it by activating a registry::

    from repro import obs

    registry = obs.MetricsRegistry(trace=obs.TraceWriter("run.jsonl"))
    with obs.activate(registry):
        result = run_simulation(network, model, controller, horizon=100)
    print(registry.table())

or from the CLI with ``--metrics-out`` / ``--trace`` (see EXPERIMENTS.md).
The trace event schema is documented in :mod:`repro.obs.trace`.
"""

from repro.obs.prometheus import prometheus_name, render_prometheus, unknown_series
from repro.obs.registry import (
    DEFAULT_TIME_EDGES,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
    gauge,
    inc,
    observe,
    set_context,
    span,
)
from repro.obs.trace import EVENT_TYPES, TraceWriter, read_trace, validate_event

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "MetricsRegistry",
    "activate",
    "active_registry",
    "gauge",
    "inc",
    "observe",
    "prometheus_name",
    "render_prometheus",
    "set_context",
    "span",
    "unknown_series",
    "EVENT_TYPES",
    "TraceWriter",
    "read_trace",
    "validate_event",
]
