"""The central metric-name catalogue — every series ``repro`` emits.

``repro.obs`` creates a series lazily on first use, which is the right
runtime behaviour (the disabled path stays allocation-free) but means a
typo'd name silently becomes a brand-new series while dashboards keep
reading the stale one.  This module is the single source of truth the
project-scope analysis rules check both directions against:

* ``OBS002`` — every ``obs.inc/gauge/observe/span`` literal used anywhere
  under ``src/repro`` must appear in the matching set below;
* ``OBS003`` — every name below must be emitted by some scanned module.

Keep the sets sorted when editing; the declarations are matched as
string literals by the analyzer (``repro.analysis.project``), so no
computed names here.

Span names double as timing series: ``obs.span("x")`` records the
``x.seconds`` histogram and the ``x.calls`` counter.  Those derived
names are implied by the ``SPANS`` entry and are not declared separately.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["COUNTERS", "GAUGES", "HISTOGRAMS", "SPANS", "all_series"]

#: ``obs.inc(name)`` series.
COUNTERS: FrozenSet[str] = frozenset(
    {
        "campaign.cells_completed",
        "campaign.items_stolen",
        "campaign.units_dispatched",
        "campaign.world_cache_hits",
        "campaign.world_cache_misses",
        "lp.iterations",
        "lp.warm_hits",
        "lp.warm_misses",
        "olgd.arms_played",
        "serve.offers",
        "serve.rejected",
        "serve.slots",
        "sim.retries",
        "sim.slots",
        "state.load",
        "state.save",
    }
)

#: ``obs.gauge(name, value)`` series.
GAUGES: FrozenSet[str] = frozenset(
    {
        "campaign.cells_in_flight",
        "serve.buffer_fill",
    }
)

#: ``obs.observe(name, value)`` series (none today: timing histograms are
#: derived from spans; add direct-histogram names here when they appear).
HISTOGRAMS: FrozenSet[str] = frozenset()

#: ``obs.span(name)`` base names (imply ``<name>.seconds`` / ``<name>.calls``).
SPANS: FrozenSet[str] = frozenset(
    {
        "gan.predict",
        "gan.refine",
        "lp.patch",
        "lp.solve",
        "nn.backward",
        "nn.forward",
        "olgd.arm_update",
        "olgd.candidates",
        "olgd.repair",
        "olgd.sample",
        "serve.decide",
        "sim.decide",
        "sim.evaluate",
        "sim.observe",
        "sim.optimal",
        "state.load",
        "state.save",
    }
)


def all_series() -> FrozenSet[str]:
    """Every concrete series name the catalogue implies.

    Expands the span base names into the derived ``<name>.seconds``
    histogram and ``<name>.calls`` counter a completed span records, and
    unions them with the directly-declared counters/gauges/histograms.
    This is the reference set exporters validate live registries against
    (see :func:`repro.obs.prometheus.unknown_series`).
    """
    derived = {f"{name}.seconds" for name in SPANS}
    derived |= {f"{name}.calls" for name in SPANS}
    return frozenset(COUNTERS | GAUGES | HISTOGRAMS | derived)
