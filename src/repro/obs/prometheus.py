"""Prometheus text-format rendering of a :class:`MetricsRegistry`.

The serving layer (:mod:`repro.serve`) exposes live telemetry on a
``/metrics`` endpoint; this module turns a registry snapshot into the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ version
0.0.4 using only the stdlib.  Conventions:

* dotted series names become underscore-joined metric names under one
  namespace prefix (``sim.slots`` -> ``repro_sim_slots_total``);
* counters carry the ``_total`` suffix, gauges are exported verbatim,
  and the fixed-edge timing histograms become native Prometheus
  histograms (cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count``);
* series names are validated against the central catalogue
  (:mod:`repro.obs.names`) — the same source of truth the static
  analysis rules ``OBS002``/``OBS003`` enforce — so a scrape can never
  silently expose a series the catalogue does not know about.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.obs.names import all_series
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus", "prometheus_name", "unknown_series"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(series: str, *, namespace: str = "repro") -> str:
    """The Prometheus spelling of a dotted ``repro.obs`` series name.

    ``sim.slots`` -> ``repro_sim_slots``; any character outside the
    Prometheus metric-name alphabet collapses to ``_``.
    """
    base = _INVALID_CHARS.sub("_", series)
    return f"{namespace}_{base}" if namespace else base


def unknown_series(registry: MetricsRegistry) -> Tuple[str, ...]:
    """Series in ``registry`` that the central catalogue does not declare.

    Sorted tuple of offending names; empty when every counter, gauge and
    histogram the registry holds appears in
    :func:`repro.obs.names.all_series`.  The serve exporter's tests pin
    this to empty so live telemetry and the ``OBS002``/``OBS003`` static
    rules can never drift apart.
    """
    catalogue = all_series()
    snapshot = registry.snapshot()
    present = (
        set(snapshot["counters"])
        | set(snapshot["gauges"])
        | set(snapshot["histograms"])
    )
    return tuple(sorted(present - catalogue))


def render_prometheus(
    registry: MetricsRegistry,
    *,
    namespace: str = "repro",
    strict: bool = False,
) -> str:
    """Render ``registry`` as a Prometheus text-format payload.

    ``strict=True`` raises :class:`ValueError` when the registry holds a
    series missing from the :mod:`repro.obs.names` catalogue (the
    default keeps rendering permissive so ad-hoc local registries stay
    scrapeable).  The returned string ends with a newline, as the
    exposition format requires.
    """
    if strict:
        unknown = unknown_series(registry)
        if unknown:
            raise ValueError(
                f"series not declared in repro.obs.names: {list(unknown)}"
            )
    lines: List[str] = []
    counters = registry.counters
    for series in sorted(counters):
        name = prometheus_name(series, namespace=namespace)
        lines.append(f"# TYPE {name}_total counter")
        lines.append(f"{name}_total {_format_value(counters[series])}")
    gauges = registry.gauges
    for series in sorted(gauges):
        name = prometheus_name(series, namespace=namespace)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(gauges[series])}")
    for series in sorted(registry.snapshot()["histograms"]):
        histogram = registry.histogram(series)
        assert histogram is not None  # snapshot listed it
        lines.extend(
            _render_histogram(
                prometheus_name(series, namespace=namespace), histogram
            )
        )
    return "\n".join(lines) + "\n"


def _render_histogram(name: str, histogram: Histogram) -> List[str]:
    """Cumulative ``_bucket`` series plus ``_sum`` / ``_count``."""
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    # counts[0] is the underflow bucket (< edges[0]); Prometheus buckets
    # are upper-bound-inclusive, so it folds into the first le edge.
    for edge, count in zip(histogram.edges, histogram.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
        )
    cumulative += histogram.counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_format_value(histogram.total)}")
    lines.append(f"{name}_count {histogram.count}")
    return lines


def _format_value(value: float) -> str:
    """Compact numeric rendering: integers without a trailing ``.0``."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
