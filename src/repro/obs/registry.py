"""Process-local metrics: counters, gauges, fixed-bucket histograms, spans.

The simulator's public timing series (the paper's Fig. 3b/4b/6b curves)
stay on :class:`repro.utils.timer.Stopwatch`; this module answers the
*next* question — where inside a slot the time goes (LP patch vs. solve
vs. rounding vs. repair vs. arm updates).  Design constraints:

* **Deterministic keys.**  Metric names are plain dotted strings chosen
  at the instrumentation site; no wall-clock, PIDs or dates ever appear
  in a key, so two runs of the same scenario produce snapshot dictionaries
  with identical key sets (values of timing histograms differ, counters
  do not).
* **Zero-cost when off.**  Telemetry is *disabled by default*: the
  module-level helpers (:func:`span`, :func:`inc`, :func:`observe`)
  check one module global and fall through to shared no-op objects, so
  instrumented hot paths pay a dictionary-free constant overhead
  (measured in ``benchmarks/bench_obs_overhead.py`` to be well under the
  5% per-slot budget).
* **Mergeable.**  A registry serialises to a plain-dict
  :meth:`~MetricsRegistry.snapshot` (picklable, JSON-able) and merges
  additively, which is how :class:`repro.sim.parallel.ParallelRunner`
  workers report back to the parent process.

Typical use::

    from repro import obs

    registry = obs.MetricsRegistry()
    with obs.activate(registry):
        run_simulation(...)          # instrumented code records into it
    print(registry.table())
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.obs.trace import TraceWriter

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "MetricsRegistry",
    "activate",
    "active_registry",
    "gauge",
    "inc",
    "observe",
    "set_context",
    "span",
]

#: Fixed bucket edges (seconds) for all span-duration histograms: decades
#: from 1 µs to 10 s.  Values below the first edge land in bucket 0,
#: values >= the last edge in the overflow bucket.  Fixed edges keep every
#: snapshot mergeable regardless of which process observed what.
DEFAULT_TIME_EDGES: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


@dataclass
class Histogram:
    """Counts over fixed bucket edges plus running summary statistics.

    ``counts[i]`` counts observations in ``[edges[i-1], edges[i])`` with
    ``counts[0]`` the underflow (``< edges[0]``) and ``counts[-1]`` the
    overflow (``>= edges[-1]``) bucket — ``len(counts) == len(edges) + 1``.
    """

    edges: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.edges or list(self.edges) != sorted(set(self.edges)):
            raise ValueError(
                f"histogram edges must be strictly increasing, got {self.edges}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise ValueError(
                f"need {len(self.edges) + 1} buckets for {len(self.edges)} "
                f"edges, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class _Span:
    """Scoped timer: records a duration histogram + call counter on exit."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.record_span(self._name, perf_counter() - self._started)


class _NullSpan:
    """Shared no-op context manager used when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Process-local store of counters, gauges and histograms.

    Optionally carries a :class:`repro.obs.trace.TraceWriter`; when one is
    attached every completed span additionally emits a JSONL trace event
    tagged with the registry's current context (see :meth:`set_context`).
    """

    def __init__(self, trace: Optional["TraceWriter"] = None) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._context: Dict[str, object] = {}
        self.trace = trace

    # ---- recording --------------------------------------------------- #

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Tuple[float, ...] = DEFAULT_TIME_EDGES,
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(edges=tuple(edges))
        histogram.observe(value)

    def span(self, name: str) -> _Span:
        """Scoped timer: ``with registry.span("lp.solve"): ...``.

        On exit it records the duration into histogram ``<name>.seconds``
        and increments counter ``<name>.calls``.
        """
        return _Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """What a completed span records (exposed for manual timing)."""
        self.observe(f"{name}.seconds", seconds)
        self.inc(f"{name}.calls")
        if self.trace is not None:
            event = {"type": "span", "name": name, "seconds": seconds}
            event.update(self._context)
            self.trace.emit(event)

    def set_context(self, **labels: object) -> None:
        """Merge ``labels`` into the context attached to trace events.

        A label set to ``None`` is removed.  Context never leaks into
        metric keys — it only annotates trace events.
        """
        for key, value in labels.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    # ---- reading ----------------------------------------------------- #

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def span_names(self) -> List[str]:
        """Names that have at least one completed span, sorted."""
        suffix = ".seconds"
        return sorted(
            name[: -len(suffix)]
            for name in self._histograms
            if name.endswith(suffix)
        )

    # ---- merge / serialisation --------------------------------------- #

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges take
        the other's latest value, histograms merge bucket-wise)."""
        for name, value in other._counters.items():
            self.inc(name, value)
        self._gauges.update(other._gauges)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = Histogram(
                    edges=histogram.edges,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    total=histogram.total,
                    min=histogram.min,
                    max=histogram.max,
                )
            else:
                mine.merge(histogram)

    def snapshot(self) -> dict:
        """Plain-dict state: picklable, JSON-able, and round-trippable
        through :meth:`from_snapshot` (how workers report to the parent)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in self._histograms.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry._counters = {
            str(k): float(v) for k, v in snapshot.get("counters", {}).items()
        }
        registry._gauges = {
            str(k): float(v) for k, v in snapshot.get("gauges", {}).items()
        }
        for name, h in snapshot.get("histograms", {}).items():
            registry._histograms[str(name)] = Histogram(
                edges=tuple(h["edges"]),
                counts=[int(c) for c in h["counts"]],
                count=int(h["count"]),
                total=float(h["total"]),
                min=float(h["min"]),
                max=float(h["max"]),
            )
        return registry

    def table(self) -> str:
        """Aligned text block: spans (calls, total, mean) then counters."""
        lines = [
            f"{'span':<28} {'calls':>8} {'total [s]':>12} {'mean [ms]':>12}"
        ]
        for name in self.span_names():
            h = self._histograms[f"{name}.seconds"]
            lines.append(
                f"{name:<28} {h.count:>8} {h.total:>12.4f} "
                f"{h.mean * 1e3:>12.4f}"
            )
        plain = {
            name: value
            for name, value in sorted(self._counters.items())
            if not name.endswith(".calls")
        }
        if plain:
            lines.append(f"{'counter':<28} {'value':>8}")
            for name, value in plain.items():
                rendered = f"{int(value)}" if value == int(value) else f"{value:.3f}"
                lines.append(f"{name:<28} {rendered:>8}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Process-local activation
# --------------------------------------------------------------------- #

_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry instrumented code currently records into (or None)."""
    return _ACTIVE


class _Activation:
    """Context manager installing a registry as the process-local target."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._registry
        return self._registry

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def activate(registry: Optional[MetricsRegistry]) -> _Activation:
    """Install ``registry`` for the dynamic extent of a ``with`` block.

    ``activate(None)`` is a supported no-op (telemetry stays off), which
    lets call sites write ``with activate(maybe_registry):`` unconditionally.
    Activations nest; the previous target is restored on exit.
    """
    return _Activation(registry)


def span(name: str) -> Union[_Span, _NullSpan]:
    """Module-level scoped timer honouring the active registry.

    Returns a shared no-op context manager when telemetry is disabled —
    the fast path instrumentation relies on (one global read, no
    allocation).
    """
    registry = _ACTIVE
    if registry is None:
        return _NULL_SPAN
    return registry.span(name)


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, value)


def observe(
    name: str, value: float, edges: Tuple[float, ...] = DEFAULT_TIME_EDGES
) -> None:
    """Record into a histogram on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, edges)


def set_context(**labels: object) -> None:
    """Update the active registry's trace context (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_context(**labels)
