"""JSONL trace output: one event per line, schema below.

A trace is an append-only file of JSON objects, one per line, written by
:class:`TraceWriter` and read back with :func:`read_trace`.  Every event
carries:

``type``
    Event kind.  ``"span"`` (a completed scoped timer), ``"counter"`` (an
    explicit counter emission) or ``"event"`` (free-form marker).
``name``
    The dotted instrumentation-site name (``"sim.decide"``,
    ``"lp.solve"``, ...) — same namespace as the metric keys.

Type-specific fields:

``seconds`` (span)
    Duration of the span, seconds (``time.perf_counter`` delta — the
    only wall-clock-derived quantity; no absolute timestamps are ever
    written, so traces of identical runs differ only in durations).
``value`` (counter / event)
    The emitted numeric value.

Any remaining keys are *context labels* attached by
:meth:`repro.obs.MetricsRegistry.set_context` — the simulation loop sets
``slot`` and ``controller``, so a trace line looks like::

    {"type": "span", "name": "lp.solve", "seconds": 0.0021,
     "slot": 17, "controller": "OL_GD"}

Reserved keys (``type``, ``name``, ``seconds``, ``value``) must not be
used as context labels; :func:`validate_event` enforces the schema and is
what the round-trip tests run against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Union

__all__ = ["TraceWriter", "read_trace", "validate_event", "EVENT_TYPES"]

#: The closed set of event kinds a trace may contain.
EVENT_TYPES = ("span", "counter", "event")

_RESERVED = {"type", "name"}
_TYPE_FIELDS = {"span": "seconds", "counter": "value", "event": None}


def validate_event(event: dict) -> dict:
    """Check one decoded trace line against the schema; returns it.

    Raises ``ValueError`` naming the offending field otherwise.
    """
    if not isinstance(event, dict):
        raise ValueError(f"trace event must be an object, got {type(event).__name__}")
    kind = event.get("type")
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown trace event type {kind!r}; expected {EVENT_TYPES}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"trace event needs a non-empty string 'name', got {name!r}")
    required = _TYPE_FIELDS[kind]
    if required is not None:
        value = event.get(required)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"{kind} event needs a numeric {required!r}, got {value!r}"
            )
    return event


class TraceWriter:
    """Append-only JSONL writer; safe to attach to a MetricsRegistry.

    The file is opened lazily on the first event (so constructing a
    writer for a path nobody traces into creates no file) and flushed per
    event — a crashed run keeps every completed line.  Use as a context
    manager or call :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self._n_events = 0

    @property
    def n_events(self) -> int:
        """Events written so far."""
        return self._n_events

    def emit(self, event: dict) -> None:
        """Validate and append one event as a JSON line."""
        validate_event(event)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        self._n_events += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Read a JSONL trace back, validating every event against the schema."""
    events: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from error
            try:
                events.append(validate_event(event))
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: {error}") from error
    return events
