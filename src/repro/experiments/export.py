"""Export figure results to CSV/JSON for external plotting."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.experiments.figures import FigureResult

__all__ = ["figure_to_dict", "figure_to_json", "figure_to_csv"]


def figure_to_dict(figure: FigureResult) -> Dict:
    """Plain-dict form of a figure result (JSON-serialisable)."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "x_values": list(figure.x_values),
        "panels": {
            panel: {name: list(series) for name, series in algorithms.items()}
            for panel, algorithms in figure.panels.items()
        },
    }


def figure_to_json(figure: FigureResult, path: Union[str, Path, None] = None) -> str:
    """Serialise a figure to JSON; optionally write it to ``path``."""
    text = json.dumps(figure_to_dict(figure), indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def figure_to_csv(figure: FigureResult, directory: Union[str, Path]) -> List[Path]:
    """Write one CSV per panel into ``directory``; returns the paths.

    Each CSV has the x column first, then one column per algorithm.
    Scalar side-panels (``as1755_*``) are written as single-row CSVs.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for panel, algorithms in figure.panels.items():
        path = directory / f"{figure.figure_id}_{panel}.csv"
        names = sorted(algorithms)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if panel.startswith("as1755_"):
                writer.writerow(names)
                writer.writerow([algorithms[name][0] for name in names])
            else:
                writer.writerow([figure.x_label, *names])
                for row_index, x in enumerate(figure.x_values):
                    writer.writerow(
                        [x, *(algorithms[name][row_index] for name in names)]
                    )
        written.append(path)
    return written


def load_figure_json(path: Union[str, Path]) -> FigureResult:
    """Load a figure previously written by :func:`figure_to_json`."""
    data = json.loads(Path(path).read_text())
    figure = FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        x_values=list(data["x_values"]),
    )
    figure.panels = {
        panel: {name: list(series) for name, series in algorithms.items()}
        for panel, algorithms in data["panels"].items()
    }
    figure.validate()
    return figure
