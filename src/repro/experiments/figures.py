"""Figure regenerators: one function per evaluation figure (Figs. 3-7).

Every generator builds the §VI-A setting (GT-ITM or AS1755 topology,
tiered base stations, NYC-Wi-Fi-like user trace), runs the relevant
algorithms over the horizon and returns a :class:`FigureResult` with the
same series the paper plots.  Values are averaged over
``profile.repetitions`` independently-seeded topologies (the paper uses
80); with ``profile.n_jobs != 1`` the repetitions fan out over a process
pool (``repro.sim.parallel``) with bit-identical averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core import make_controller
from repro.core.controller import Controller
from repro.experiments.config import ExperimentProfile
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import SimulationResult
from repro.sim.parallel import ParallelRunner
from repro.utils.seeding import RngRegistry
from repro.workload import (
    BurstyDemandModel,
    ConstantDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

__all__ = [
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
]


@dataclass
class FigureResult:
    """A reproduced figure: named series over a common x-axis."""

    figure_id: str
    title: str
    x_label: str
    x_values: List[float]
    # panel -> algorithm -> series (same length as x_values)
    panels: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def add_point(self, panel: str, algorithm: str, value: float) -> None:
        self.panels.setdefault(panel, {}).setdefault(algorithm, []).append(
            float(value)
        )

    def series(self, panel: str, algorithm: str) -> np.ndarray:
        return np.array(self.panels[panel][algorithm])

    def validate(self) -> None:
        """Every series must cover every x value.

        Panels prefixed ``as1755_`` are scalar side-panels (Fig. 7's real-
        topology bars) with their own implicit axis and are skipped.
        """
        for panel, algorithms in self.panels.items():
            if panel.startswith("as1755_"):
                continue
            for algorithm, values in algorithms.items():
                if len(values) != len(self.x_values):
                    raise ValueError(
                        f"{self.figure_id}/{panel}/{algorithm} has "
                        f"{len(values)} points for {len(self.x_values)} x values"
                    )


# --------------------------------------------------------------------- #
# Setting construction
# --------------------------------------------------------------------- #


def _build_setting(
    profile: ExperimentProfile,
    rngs: RngRegistry,
    n_stations: int,
    topology: str = "gtitm",
    bursty: bool = False,
):
    """Network + requests + demand model for one repetition.

    Mirrors §VI-A plus the scenario decisions recorded in DESIGN.md:

    * the user trace is synthesised first and its hotspots anchor the
      small-cell placement (operators deploy femtocells at traffic
      hotspots — this is what gives Pri_GD's coverage priority meaning);
    * `d_i(t)` follows a drifting random walk (the paper's "time-varying
      processing delays" uncertainty — a stationary process would let a
      memorising baseline match the learner);
    * `C_unit` is calibrated so one femtocell hosts about
      ``profile.femto_requests`` average requests: the smallest tier stays
      usable (femtocells exist to serve users) while the fast small cells
      are scarce enough that the joint caching/offloading optimisation
      has something to optimise.
    """
    from repro.mec.delay import DriftingDelay

    trace_rng = rngs.get("trace")
    trace = synthesize_nyc_wifi_trace(
        profile.n_hotspots,
        profile.n_requests,
        trace_rng,
        horizon_slots=profile.horizon,
    )
    anchors = [h.location for h in trace.hotspots]

    if topology == "gtitm":
        network = MECNetwork.synthetic(
            n_stations, profile.n_services, rngs, anchor_points=anchors
        )
    elif topology == "as1755":
        network = MECNetwork.as1755(
            profile.n_services, rngs, anchor_points=anchors
        )
    else:
        raise ValueError(f"unknown topology {topology!r}")

    if profile.drift_ms > 0:
        congestion = None
        if topology == "as1755":
            # Preserve the hub-congestion structure of the real topology
            # under the drifting process (same coupling as MECNetwork.as1755).
            degrees = np.array(
                [network.graph.degree(i) for i in range(network.n_stations)],
                dtype=float,
            )
            congestion = 1.0 + degrees / degrees.max()
        network.delays = DriftingDelay(
            network.stations,
            rngs.get("delays-drift"),
            drift_ms=profile.drift_ms,
            congestion=congestion,
        )

    requests = requests_from_trace(trace, network.services, trace_rng)
    if bursty:
        # Default (slot-mode) amplitudes: explosive per-slot volumes whose
        # conditional structure linear extrapolation cannot fit — the
        # "hard-to-grasp burstiness" the GAN predictor targets.
        demand_model = BurstyDemandModel(requests, rngs.get("demand"))
    else:
        demand_model = ConstantDemandModel(requests)
    # Calibrate C_unit from the smallest tier: a femtocell must be able to
    # host ~`femto_requests` average-size requests, otherwise the fastest
    # stations are unusable and every algorithm degenerates to the macros.
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(
        network.capacities_mhz.min() / (profile.femto_requests * mean_demand)
    )
    return network, requests, demand_model


@dataclass(frozen=True)
class _FigureScenario:
    """Picklable scenario builder for one figure setting.

    The repetition fan-out ships the builder to worker processes, so it
    must pickle — closures over ``profile`` cannot.  ``family`` selects the
    controller set: ``"given"`` (OL_GD and the §IV baselines) or
    ``"predictive"`` (OL_GAN vs OL_Reg, §V).
    """

    profile: ExperimentProfile
    n_stations: int
    topology: str = "gtitm"
    bursty: bool = False
    family: str = "given"

    def __call__(self, rngs: RngRegistry):
        network, requests, demand_model = _build_setting(
            self.profile,
            rngs,
            self.n_stations,
            topology=self.topology,
            bursty=self.bursty,
        )
        if self.family == "given":
            controllers = _given_demand_controllers(rngs, network, requests)
        elif self.family == "predictive":
            controllers = _predictive_controllers(
                self.profile, rngs, network, requests
            )
        else:
            raise ValueError(f"unknown controller family {self.family!r}")
        return network, demand_model, controllers


# Controller counts per family, so the parallel path can size its work
# grid without a probe build (building a predictive scenario pretrains
# the GAN — too expensive to do just for counting).
_FAMILY_SIZES = {"given": 3, "predictive": 2}


def _average_runs(
    profile: ExperimentProfile,
    family: str,
    n_stations: int,
    topology: str = "gtitm",
    bursty: bool = False,
    horizon: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run a controller family over ``repetitions`` independent topologies.

    Returns one merged :class:`SimulationResult` per controller whose
    delay / runtime / prediction-MAE series are element-wise means across
    repetitions (all repetitions share the horizon, mirroring the paper's
    80-topology averaging).  Slot-level integer diagnostics (cache churn,
    instance counts) are taken from repetition 0 — they are per-run
    observables, not averaged statistics.

    Repetitions execute through :class:`repro.sim.ParallelRunner` honouring
    ``profile.n_jobs`` (results are bit-identical across worker counts).
    Figures need every repetition, so unlike ``run_repetitions`` a crashed
    repetition is an error here — a silently missing seed would change the
    averages the reproduction reports.
    """
    horizon = horizon if horizon is not None else profile.horizon
    scenario = _FigureScenario(
        profile=profile,
        n_stations=n_stations,
        topology=topology,
        bursty=bursty,
        family=family,
    )
    # Sweep persistence (repro.state): each scenario configuration gets its
    # own subdirectory under the profile's checkpoint root, so a report run
    # interrupted between figures resumes exactly where it stopped.
    sweep_dir = None
    if profile.checkpoint_dir is not None:
        label = f"{family}-{topology}-bs{n_stations}-h{horizon}"
        if bursty:
            label += "-bursty"
        sweep_dir = Path(profile.checkpoint_dir) / label
    runner = ParallelRunner(n_jobs=profile.n_jobs)
    work = runner.run(
        scenario,
        seed=profile.seed,
        repetitions=profile.repetitions,
        horizon=horizon,
        demands_known=not bursty,
        n_controllers=_FAMILY_SIZES[family],
        max_retries=profile.max_retries,
        checkpoint_dir=sweep_dir,
        checkpoint_every=profile.checkpoint_every,
        resume=profile.resume,
    )
    failed = [w for w in work if not w.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} of {len(work)} figure runs failed; first "
            f"failure (rep{failed[0].repetition}):\n{failed[0].error_traceback}"
        )
    merged: Dict[str, List[SimulationResult]] = {}
    for w in work:  # sorted by (repetition, controller) — repetition order
        merged.setdefault(w.controller_name, []).append(w.result)

    averaged: Dict[str, SimulationResult] = {}
    for name, results in merged.items():
        base = results[0]
        if len(results) > 1:
            delays = np.mean([r.delays_ms for r in results], axis=0)
            decide_times = np.mean([r.decide_only_seconds for r in results], axis=0)
            observe_times = np.mean(
                [r.decision_seconds - r.decide_only_seconds for r in results], axis=0
            )
            maes_stack = np.stack([r.prediction_maes for r in results])
            if np.isnan(maes_stack).all():
                maes = np.full(base.horizon, np.nan)
            else:
                maes = np.nanmean(maes_stack, axis=0)
            from repro.sim.metrics import SlotRecord

            combined = SimulationResult(controller_name=name)
            for t in range(base.horizon):
                combined.append(
                    SlotRecord(
                        slot=t,
                        average_delay_ms=float(delays[t]),
                        decision_seconds=float(decide_times[t]),
                        observe_seconds=float(observe_times[t]),
                        cache_churn=base.records[t].cache_churn,
                        n_cached_instances=base.records[t].n_cached_instances,
                        max_load_fraction=base.records[t].max_load_fraction,
                        prediction_mae_mb=None if np.isnan(maes[t]) else float(maes[t]),
                        initial_instantiations=base.records[t].initial_instantiations,
                    )
                )
            averaged[name] = combined
        else:
            averaged[name] = base
    return averaged


def _given_demand_controllers(
    rngs: RngRegistry, network: MECNetwork, requests: List[Request]
) -> List[Controller]:
    return [
        make_controller("OL_GD", network, requests, rngs.get("ol-gd")),
        make_controller("Greedy_GD", network, requests, rngs.get("greedy")),
        make_controller("Pri_GD", network, requests, rngs.get("priority")),
    ]


def _predictive_controllers(
    profile: ExperimentProfile,
    rngs: RngRegistry,
    network: MECNetwork,
    requests: List[Request],
) -> List[Controller]:
    # The GAN's small sample: demand history from *before* the horizon,
    # produced by an independently-seeded copy of the demand process.
    warmup_model = BurstyDemandModel(requests, rngs.get("warmup-demand"))
    warmup = warmup_model.matrix(profile.gan_pretrain_slots)
    # Common random numbers: both controllers' inner OL_GD draws the same
    # exploration/rounding sequence, so the delay difference isolates the
    # prediction quality (GAN vs AR) the figure is about.
    pair_seed = int(rngs.get("inner-pair").integers(2**63 - 1))
    return [
        make_controller(
            "OL_GAN",
            network,
            requests,
            rngs.get("ol-gan"),
            n_hotspots=profile.n_hotspots,
            warmup_history=warmup,
            inner_rng=np.random.default_rng(pair_seed),
            window=profile.gan_window,
            hidden_size=profile.gan_hidden,
            pretrain_epochs=profile.gan_pretrain_epochs,
            online_steps=1,
            supervised_quantile=0.7,
        ),
        make_controller(
            "OL_Reg",
            network,
            requests,
            rngs.get("ol-reg"),
            inner_rng=np.random.default_rng(pair_seed),
        ),
    ]


# --------------------------------------------------------------------- #
# The five evaluation figures
# --------------------------------------------------------------------- #


def figure3(profile: ExperimentProfile) -> FigureResult:
    """Fig. 3: OL_GD vs Greedy_GD vs Pri_GD over the horizon (GT-ITM).

    Panel ``delay_ms``: per-slot average delay (Fig. 3a); panel
    ``runtime_s``: per-slot decision time (Fig. 3b).
    """
    results = _average_runs(
        profile, "given", n_stations=profile.base_stations
    )
    figure = FigureResult(
        figure_id="fig3",
        title=f"OL_GD vs baselines, {profile.base_stations} stations (GT-ITM)",
        x_label="time slot",
        x_values=list(range(profile.horizon)),
    )
    for name, result in results.items():
        for value in result.delays_ms:
            figure.add_point("delay_ms", name, value)
        for value in result.decision_seconds:
            figure.add_point("runtime_s", name, value)
    figure.validate()
    return figure


def figure4(profile: ExperimentProfile) -> FigureResult:
    """Fig. 4: the same three algorithms across network sizes 50-200."""
    figure = FigureResult(
        figure_id="fig4",
        title="OL_GD vs baselines across network sizes (GT-ITM)",
        x_label="number of base stations",
        x_values=[float(s) for s in profile.sweep_sizes],
    )
    for size in profile.sweep_sizes:
        results = _average_runs(profile, "given", n_stations=size)
        for name, result in results.items():
            figure.add_point("delay_ms", name, result.mean_delay_ms())
            figure.add_point("runtime_s", name, result.mean_decision_seconds())
    figure.validate()
    return figure


def figure5(profile: ExperimentProfile) -> FigureResult:
    """Fig. 5: the given-demand algorithms on the real topology AS1755."""
    results = _average_runs(
        profile,
        "given",
        n_stations=0,  # AS1755 fixes its own size
        topology="as1755",
    )
    figure = FigureResult(
        figure_id="fig5",
        title="OL_GD vs baselines on AS1755",
        x_label="time slot",
        x_values=list(range(profile.horizon)),
    )
    for name, result in results.items():
        for value in result.delays_ms:
            figure.add_point("delay_ms", name, value)
        for value in result.decision_seconds:
            figure.add_point("runtime_s", name, value)
    figure.validate()
    return figure


def figure6(profile: ExperimentProfile) -> FigureResult:
    """Fig. 6: OL_GAN vs OL_Reg with unknown (bursty) demands (GT-ITM)."""
    results = _average_runs(
        profile,
        "predictive",
        n_stations=profile.base_stations,
        bursty=True,
    )
    figure = FigureResult(
        figure_id="fig6",
        title=f"OL_GAN vs OL_Reg, {profile.base_stations} stations (GT-ITM)",
        x_label="time slot",
        x_values=list(range(profile.horizon)),
    )
    for name, result in results.items():
        for value in result.delays_ms:
            figure.add_point("delay_ms", name, value)
        for value in result.decision_seconds:
            figure.add_point("runtime_s", name, value)
        for value in result.prediction_maes:
            figure.add_point("prediction_mae_mb", name, value)
    figure.validate()
    return figure


def figure7(profile: ExperimentProfile) -> FigureResult:
    """Fig. 7: OL_GAN vs OL_Reg on AS1755 and across sizes 50-300.

    Panel ``as1755_runtime_s``: per-slot decision time on the real
    topology (the paper's Fig. 7 left); panels ``delay_ms`` /
    ``runtime_s``: sweep over network sizes (Fig. 7 right).  The sweep
    panels are indexed by ``x_values``; the AS1755 panel carries one value
    per slot and is stored under its own x-axis in ``as1755_slots``.
    """
    figure = FigureResult(
        figure_id="fig7",
        title="OL_GAN vs OL_Reg: AS1755 and network-size sweep",
        x_label="number of base stations",
        x_values=[float(s) for s in profile.sweep_sizes_wide],
    )
    for size in profile.sweep_sizes_wide:
        results = _average_runs(
            profile,
            "predictive",
            n_stations=size,
            bursty=True,
        )
        for name, result in results.items():
            figure.add_point("delay_ms", name, result.mean_delay_ms())
            figure.add_point("runtime_s", name, result.mean_decision_seconds())
            figure.add_point(
                "prediction_mae_mb", name, float(np.nanmean(result.prediction_maes))
            )
    figure.validate()

    as1755_results = _average_runs(
        profile,
        "predictive",
        n_stations=0,
        topology="as1755",
        bursty=True,
    )
    # Stored outside validate()'s x-axis check: one scalar per algorithm.
    figure.panels["as1755_runtime_s"] = {
        name: [result.mean_decision_seconds()]
        for name, result in as1755_results.items()
    }
    figure.panels["as1755_delay_ms"] = {
        name: [result.mean_delay_ms()] for name, result in as1755_results.items()
    }
    return figure
