"""One-shot reproduction report: run every figure, check every claim.

`python -m repro report` (or :func:`run_full_report`) regenerates all five
evaluation figures at the chosen profile, evaluates the paper-claims
scorecard for each, and renders a single markdown document — the
machine-generated counterpart of the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.experiments.claims import ClaimResult, check_figure
from repro.experiments.config import ExperimentProfile
from repro.experiments.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.plots import render_figure_plots

__all__ = ["ReproductionReport", "run_full_report", "render_report_markdown"]

_GENERATORS: List[Tuple[str, Callable[[ExperimentProfile], FigureResult]]] = [
    ("fig3", figure3),
    ("fig4", figure4),
    ("fig5", figure5),
    ("fig6", figure6),
    ("fig7", figure7),
]


@dataclass
class ReproductionReport:
    """Everything a full run produced."""

    profile_name: str
    figures: Dict[str, FigureResult]
    claims: Dict[str, List[ClaimResult]]
    seconds: Dict[str, float]

    @property
    def total_claims(self) -> int:
        return sum(len(results) for results in self.claims.values())

    @property
    def passed_claims(self) -> int:
        return sum(
            sum(1 for r in results if r.passed) for results in self.claims.values()
        )

    @property
    def failed_hard_claims(self) -> List[ClaimResult]:
        return [
            r
            for results in self.claims.values()
            for r in results
            if r.hard and not r.passed
        ]

    @property
    def all_hard_claims_pass(self) -> bool:
        return not self.failed_hard_claims


def run_full_report(
    profile: ExperimentProfile,
    only: Optional[List[str]] = None,
) -> ReproductionReport:
    """Run the selected figures (default: all) and score the claims."""
    wanted = set(only) if only is not None else {name for name, _ in _GENERATORS}
    unknown = wanted - {name for name, _ in _GENERATORS}
    if unknown:
        raise ValueError(f"unknown figure ids: {sorted(unknown)}")
    figures: Dict[str, FigureResult] = {}
    claims: Dict[str, List[ClaimResult]] = {}
    seconds: Dict[str, float] = {}
    for name, generator in _GENERATORS:
        if name not in wanted:
            continue
        start = time.perf_counter()
        figure = generator(profile)
        seconds[name] = time.perf_counter() - start
        figures[name] = figure
        claims[name] = check_figure(figure, profile)
    return ReproductionReport(
        profile_name=profile.name, figures=figures, claims=claims, seconds=seconds
    )


def render_report_markdown(report: ReproductionReport) -> str:
    """Markdown rendering: verdict summary, per-figure scorecards, plots."""
    lines: List[str] = [
        "# Reproduction report — Learning for Exception (ICDCS 2020)",
        "",
        f"Profile: **{report.profile_name}** | claims passed: "
        f"**{report.passed_claims}/{report.total_claims}** | hard claims: "
        f"**{'ALL PASS' if report.all_hard_claims_pass else 'FAILURES'}**",
        "",
    ]
    for name, results in report.claims.items():
        lines.append(f"## {name}  ({report.seconds[name]:.1f}s)")
        lines.append("")
        lines.append("| claim | verdict | measured |")
        lines.append("|---|---|---|")
        for result in results:
            verdict = (
                "PASS" if result.passed else ("**FAIL**" if result.hard else "soft-miss")
            )
            lines.append(f"| {result.claim_id} | {verdict} | {result.detail} |")
        lines.append("")
        lines.append("```")
        lines.append(render_figure_plots(report.figures[name]))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    report: ReproductionReport, path: Union[str, Path]
) -> Path:
    """Render and write the markdown report; returns the path."""
    path = Path(path)
    path.write_text(render_report_markdown(report))
    return path
