"""The paper's claims as checkable objects: a reproduction scorecard.

Each :class:`Claim` pairs the paper's statement with a programmatic check
over a regenerated :class:`FigureResult`.  The figure benchmarks print
the scorecard and assert the *hard* claims (those whose failure means the
reproduction is broken); *soft* claims (magnitudes that need the full
profile's averaging) are reported but do not fail a quick run.

>>> from repro.experiments import figure3, QUICK_PROFILE
>>> report = check_figure(figure3(QUICK_PROFILE), QUICK_PROFILE)
>>> print(render_scorecard(report))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.experiments.config import ExperimentProfile
from repro.experiments.figures import FigureResult

__all__ = ["Claim", "ClaimResult", "check_figure", "render_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper's evaluation."""

    claim_id: str
    figure_id: str
    paper_text: str
    hard: bool  # failure of a hard claim fails the benchmark
    check: Callable[[FigureResult, ExperimentProfile], "ClaimResult"]


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of evaluating a claim on a regenerated figure."""

    claim_id: str
    passed: bool
    hard: bool
    detail: str


def _steady(figure: FigureResult, panel: str, profile: ExperimentProfile) -> Dict[str, float]:
    warmup = max(profile.horizon // 4, 1)
    return {
        name: float(np.nanmean(np.asarray(series)[warmup:]))
        for name, series in figure.panels[panel].items()
    }


# --------------------------------------------------------------------- #
# Per-figure claim definitions
# --------------------------------------------------------------------- #


def _fig3_ordering(figure, profile):
    steady = _steady(figure, "delay_ms", profile)
    ordered = steady["OL_GD"] < steady["Pri_GD"] < steady["Greedy_GD"]
    return ClaimResult(
        "fig3-ordering",
        ordered,
        True,
        f"steady delays: OL_GD {steady['OL_GD']:.2f} / Pri_GD "
        f"{steady['Pri_GD']:.2f} / Greedy_GD {steady['Greedy_GD']:.2f} ms",
    )


def _fig3_fifteen_percent(figure, profile):
    steady = _steady(figure, "delay_ms", profile)
    gap = 100.0 * (steady["Pri_GD"] - steady["OL_GD"]) / steady["Pri_GD"]
    return ClaimResult(
        "fig3-15pct",
        gap >= 10.0,
        False,
        f"OL_GD {gap:.1f}% below Pri_GD (paper: 'at least 15%')",
    )


def _fig3_runtime(figure, profile):
    runtimes = {
        name: float(np.mean(series))
        for name, series in figure.panels["runtime_s"].items()
    }
    modest = runtimes["OL_GD"] < 1.0  # within a 1 s slot budget
    return ClaimResult(
        "fig3-runtime",
        modest and runtimes["OL_GD"] > runtimes["Greedy_GD"],
        True,
        f"per-slot compute: OL_GD {runtimes['OL_GD']*1000:.1f} ms vs "
        f"Greedy_GD {runtimes['Greedy_GD']*1000:.1f} ms",
    )


def _fig4_large_sizes(figure, profile):
    delays = figure.panels["delay_ms"]
    largest = {name: series[-1] for name, series in delays.items()}
    return ClaimResult(
        "fig4-large",
        largest["OL_GD"] < largest["Pri_GD"],
        True,
        f"delay at |BS|={int(figure.x_values[-1])}: "
        + ", ".join(f"{k} {v:.2f}" for k, v in sorted(largest.items())),
    )


def _fig4_runtime_growth(figure, profile):
    runtime = figure.panels["runtime_s"]["OL_GD"]
    return ClaimResult(
        "fig4-runtime-growth",
        runtime[-1] >= runtime[0],
        True,
        f"OL_GD per-slot compute {runtime[0]*1000:.1f} -> "
        f"{runtime[-1]*1000:.1f} ms across the sweep",
    )


def _fig5_ordering(figure, profile):
    steady = _steady(figure, "delay_ms", profile)
    return ClaimResult(
        "fig5-ordering",
        steady["OL_GD"] == min(steady.values()),
        True,
        f"AS1755 steady delays: "
        + ", ".join(f"{k} {v:.2f}" for k, v in sorted(steady.items())),
    )


def _fig6_prediction(figure, profile):
    maes = _steady(figure, "prediction_mae_mb", profile)
    return ClaimResult(
        "fig6-prediction",
        maes["OL_GAN"] < maes["OL_Reg"],
        True,
        f"prediction MAE: OL_GAN {maes['OL_GAN']:.3f} vs OL_Reg "
        f"{maes['OL_Reg']:.3f} MB",
    )


def _fig6_delay(figure, profile):
    steady = _steady(figure, "delay_ms", profile)
    return ClaimResult(
        "fig6-delay",
        steady["OL_GAN"] <= steady["OL_Reg"] * 1.05,
        True,
        f"steady delay: OL_GAN {steady['OL_GAN']:.2f} vs OL_Reg "
        f"{steady['OL_Reg']:.2f} ms (paper: 'much lower'; see EXPERIMENTS.md)",
    )


def _fig7_prediction_sweep(figure, profile):
    maes = figure.panels["prediction_mae_mb"]
    gan = float(np.mean(maes["OL_GAN"]))
    reg = float(np.mean(maes["OL_Reg"]))
    return ClaimResult(
        "fig7-prediction",
        gan < reg,
        True,
        f"sweep-mean MAE: OL_GAN {gan:.3f} vs OL_Reg {reg:.3f} MB",
    )


def _fig7_size_trend(figure, profile):
    delays = figure.panels["delay_ms"]
    no_inversion = all(
        series[-1] <= 1.25 * series[0] for series in delays.values()
    )
    decreasing = all(series[-1] < series[0] for series in delays.values())
    return ClaimResult(
        "fig7-size-trend",
        no_inversion,
        True,
        ("delay decreases with size" if decreasing else
         "non-inverting at quick scale (monotone trend needs full averaging)"),
    )


CLAIMS: List[Claim] = [
    Claim("fig3-ordering", "fig3",
          "OL_GD has the lowest average delay while Greedy_GD has the highest",
          True, _fig3_ordering),
    Claim("fig3-15pct", "fig3",
          "OL_GD has at least 15% lower delay than Pri_GD",
          False, _fig3_fifteen_percent),
    Claim("fig3-runtime", "fig3",
          "OL_GD has only marginally higher running time",
          True, _fig3_runtime),
    Claim("fig4-large", "fig4",
          "OL_GD obtains the lowest delay at larger network sizes",
          True, _fig4_large_sizes),
    Claim("fig4-runtime-growth", "fig4",
          "OL_GD's running time increases faster, the gap stays trivial",
          True, _fig4_runtime_growth),
    Claim("fig5-ordering", "fig5",
          "OL_GD achieves a constant lower delay on AS1755",
          True, _fig5_ordering),
    Claim("fig6-prediction", "fig6",
          "the GAN-based method works very well on small historical data",
          True, _fig6_prediction),
    Claim("fig6-delay", "fig6",
          "OL_GAN has a much lower average delay than OL_Reg",
          True, _fig6_delay),
    Claim("fig7-prediction", "fig7",
          "OL_GAN's advantage holds across network sizes",
          True, _fig7_prediction_sweep),
    Claim("fig7-size-trend", "fig7",
          "average delays decrease with the growth of network sizes",
          True, _fig7_size_trend),
]


def check_figure(
    figure: FigureResult, profile: ExperimentProfile
) -> List[ClaimResult]:
    """Evaluate every registered claim for ``figure.figure_id``."""
    results = [
        claim.check(figure, profile)
        for claim in CLAIMS
        if claim.figure_id == figure.figure_id
    ]
    if not results:
        raise ValueError(f"no claims registered for figure {figure.figure_id!r}")
    return results


def render_scorecard(results: List[ClaimResult]) -> str:
    """Human-readable claim-by-claim verdicts."""
    if not results:
        raise ValueError("empty claim results")
    lines = []
    for result in results:
        verdict = "PASS" if result.passed else ("FAIL" if result.hard else "soft-miss")
        lines.append(f"  [{verdict:>9}] {result.claim_id}: {result.detail}")
    return "\n".join(lines)


def assert_hard_claims(results: List[ClaimResult]) -> None:
    """Raise ``AssertionError`` listing every failed *hard* claim."""
    failed = [r for r in results if r.hard and not r.passed]
    if failed:
        details = "; ".join(f"{r.claim_id} ({r.detail})" for r in failed)
        raise AssertionError(f"hard reproduction claims failed: {details}")
