"""Parameter presets for the evaluation (§VI-A).

Two profiles ship:

* :data:`FULL_PROFILE` — the paper's scale (100-slot horizons, network
  sweeps to 200/300 stations, 10 repetitions).  Budget hours of CPU for
  the fixed-size figures and **tens of hours** for the size sweeps
  (the 300-station LP costs ~10 s/slot); reduce ``repetitions`` via
  ``dataclasses.replace`` for a faster full-scale pass.
* :data:`QUICK_PROFILE` — the same experiments at reduced horizon/request
  counts so the whole benchmark suite finishes in minutes; this is the
  default for ``pytest benchmarks/``.

Set the environment variable ``REPRO_PROFILE=full`` to make the benchmark
harness use the full profile.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.validation import require_positive

__all__ = ["ExperimentProfile", "FULL_PROFILE", "QUICK_PROFILE", "active_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Everything a figure generator needs to size an experiment."""

    name: str
    horizon: int                      # time slots per run (paper: 100)
    n_requests: int                   # |R| (users sampled from the trace)
    n_services: int                   # |S|
    n_hotspots: int                   # location clusters in the trace
    base_stations: int                # |BS| for fixed-size experiments
    sweep_sizes: Tuple[int, ...]      # |BS| sweep for Fig. 4
    sweep_sizes_wide: Tuple[int, ...]  # |BS| sweep for Fig. 7
    repetitions: int                  # independent topologies averaged
    gan_pretrain_slots: int           # small-sample history for the GAN
    gan_pretrain_epochs: int
    gan_window: int
    gan_hidden: int
    femto_requests: float = 2.0       # average requests one femtocell hosts
                                      # (sets C_unit so the smallest tier is
                                      # usable; contention comes from |R|)
    drift_ms: float = 0.5             # delay-mean random-walk step (§I's
                                      # "time-varying processing delays")
    n_jobs: int = 1                   # repetition fan-out workers: 1 =
                                      # in-process, 0/None-like = all cores,
                                      # negative = joblib-style count-back
                                      # (see repro.sim.parallel)
    seed: int = 2020                  # ICDCS 2020
    # ---- crash tolerance (repro.state; threaded by the figure runner) --
    checkpoint_dir: Optional[str] = None   # sweep persistence root; each
                                           # figure scenario gets a subdir
    checkpoint_every: Optional[int] = None  # slot-level snapshot cadence
                                            # inside each run (needs dir)
    resume: bool = False              # load completed items before running
    max_retries: int = 0              # crash-retry rounds per sweep

    def __post_init__(self) -> None:
        for name in (
            "horizon",
            "n_requests",
            "n_services",
            "n_hotspots",
            "base_stations",
            "repetitions",
            "gan_pretrain_slots",
            "gan_pretrain_epochs",
            "gan_window",
            "gan_hidden",
        ):
            require_positive(name, getattr(self, name))
        if not self.sweep_sizes or not self.sweep_sizes_wide:
            raise ValueError("sweep size lists must be non-empty")
        if self.femto_requests <= 0:
            raise ValueError(
                f"femto_requests must be > 0, got {self.femto_requests}"
            )
        if self.drift_ms < 0:
            raise ValueError(f"drift_ms must be >= 0, got {self.drift_ms}")
        if not isinstance(self.n_jobs, int) or isinstance(self.n_jobs, bool):
            raise TypeError(
                f"n_jobs must be an int, got {type(self.n_jobs).__name__}"
            )
        if self.checkpoint_every is not None:
            require_positive("checkpoint_every", self.checkpoint_every)
            if self.checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


FULL_PROFILE = ExperimentProfile(
    name="full",
    horizon=100,
    n_requests=100,
    n_services=8,
    n_hotspots=10,
    base_stations=100,
    sweep_sizes=(50, 100, 150, 200),
    sweep_sizes_wide=(50, 100, 150, 200, 250, 300),
    repetitions=10,
    gan_pretrain_slots=40,
    gan_pretrain_epochs=20,
    gan_window=8,
    gan_hidden=16,
)

QUICK_PROFILE = ExperimentProfile(
    name="quick",
    horizon=30,
    n_requests=60,
    n_services=4,
    n_hotspots=5,
    base_stations=50,
    sweep_sizes=(50, 100, 150, 200),
    sweep_sizes_wide=(50, 120, 200, 300),
    repetitions=1,
    gan_pretrain_slots=24,
    gan_pretrain_epochs=8,
    gan_window=6,
    gan_hidden=10,
)


def active_profile() -> ExperimentProfile:
    """The profile selected by the ``REPRO_PROFILE`` environment variable."""
    choice = os.environ.get("REPRO_PROFILE", "quick").lower()
    if choice == "full":
        return FULL_PROFILE
    if choice == "quick":
        return QUICK_PROFILE
    raise ValueError(
        f"REPRO_PROFILE must be 'quick' or 'full', got {choice!r}"
    )
