"""Experiment harness: parameter presets and figure regenerators.

One function per evaluation figure of the paper (Figs. 3-7); each returns
a :class:`FigureResult` holding the same series the paper plots, plus a
text rendering used by the benchmark harness and EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentProfile, FULL_PROFILE, QUICK_PROFILE
from repro.experiments.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.export import figure_to_csv, figure_to_dict, figure_to_json
from repro.experiments.plots import ascii_chart, render_figure_plots, sparkline
from repro.experiments.tables import render_series_table

__all__ = [
    "ExperimentProfile",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "render_series_table",
    "figure_to_csv",
    "figure_to_dict",
    "figure_to_json",
    "ascii_chart",
    "render_figure_plots",
    "sparkline",
]
