"""Text rendering of figure results for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.figures import FigureResult

__all__ = ["render_series_table", "render_figure"]


def render_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    value_format: str = "{:10.3f}",
    max_rows: int = 12,
) -> str:
    """Align named series into a fixed-width text table.

    Long series (per-slot curves) are subsampled to ``max_rows`` evenly
    spaced rows so benchmark output stays readable.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError(
            f"series lengths {lengths} do not all match x length {len(x_values)}"
        )
    n = len(x_values)
    if n > max_rows:
        picks = np.linspace(0, n - 1, max_rows).round().astype(int)
    else:
        picks = np.arange(n)

    names = sorted(series)
    header = f"{x_label:>16} " + " ".join(f"{name:>12}" for name in names)
    lines = [header, "-" * len(header)]
    for index in picks:
        row = f"{x_values[index]:>16.6g} "
        row += " ".join(
            value_format.format(series[name][index]).rjust(12) for name in names
        )
        lines.append(row)
    return "\n".join(lines)


def render_figure(figure: FigureResult, max_rows: int = 12) -> str:
    """Render every panel of a figure result."""
    chunks: List[str] = [f"== {figure.figure_id}: {figure.title} =="]
    for panel, algorithms in figure.panels.items():
        chunks.append(f"-- panel: {panel} --")
        if panel.startswith("as1755_"):
            for name in sorted(algorithms):
                chunks.append(f"  {name:>12}: {algorithms[name][0]:.4f}")
            continue
        chunks.append(
            render_series_table(
                figure.x_label, figure.x_values, algorithms, max_rows=max_rows
            )
        )
    return "\n".join(chunks)
