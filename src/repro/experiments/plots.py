"""Terminal plots: Unicode sparklines and axis charts for figure results.

The library deliberately has no plotting dependency; these renderers give
the CLI and examples a readable visual of every reproduced series using
only text.  (`figure_to_csv` exports feed real plotting tools.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.figures import FigureResult

__all__ = ["sparkline", "ascii_chart", "render_figure_plots"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line Unicode sparkline of a series.

    ``width`` subsamples (by averaging buckets) to at most that many
    characters; NaNs render as spaces.
    """
    series = np.asarray(list(values), dtype=float)
    if series.size == 0:
        raise ValueError("cannot sparkline an empty series")
    if width is not None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if series.size > width:
            buckets = np.array_split(series, width)
            series = np.array([np.nanmean(b) if np.isfinite(b).any() else np.nan
                               for b in buckets])
    finite = series[np.isfinite(series)]
    if finite.size == 0:
        return " " * series.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    chars = []
    for value in series:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        if span == 0.0:
            chars.append(_BLOCKS[0])
        else:
            index = int(round((value - low) / span * (len(_BLOCKS) - 1)))
            chars.append(_BLOCKS[index])
    return "".join(chars)


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
) -> str:
    """A multi-series scatter chart in plain text.

    Each series gets a marker (its name's first letter, upper-cased, with
    collisions resolved by digits); the y-axis is annotated with min/max.
    """
    if not series:
        raise ValueError("need at least one series")
    if width <= 0 or height <= 1:
        raise ValueError("width must be > 0 and height > 1")
    all_values = np.concatenate(
        [np.asarray(list(v), dtype=float) for v in series.values()]
    )
    finite = all_values[np.isfinite(all_values)]
    if finite.size == 0:
        raise ValueError("no finite values to chart")
    low, high = float(finite.min()), float(finite.max())
    span = high - low or 1.0

    markers: Dict[str, str] = {}
    used: set = set()
    for position, name in enumerate(sorted(series)):
        marker = name[0].upper()
        if marker in used:
            marker = str(position % 10)
        used.add(marker)
        markers[name] = marker

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        data = np.asarray(list(values), dtype=float)
        n = data.size
        for column in range(width):
            index = min(int(column / width * n), n - 1)
            value = data[index]
            if not np.isfinite(value):
                continue
            row = int(round((value - low) / span * (height - 1)))
            grid[height - 1 - row][column] = markers[name]

    lines = []
    for row_index, row in enumerate(grid):
        label = f"{high:9.2f} |" if row_index == 0 else (
            f"{low:9.2f} |" if row_index == height - 1 else " " * 10 + "|"
        )
        lines.append(label + "".join(row))
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def render_figure_plots(figure: FigureResult, width: int = 60) -> str:
    """Sparkline summary of every panel of a figure result."""
    chunks: List[str] = [f"== {figure.figure_id}: {figure.title} =="]
    for panel, algorithms in figure.panels.items():
        chunks.append(f"-- {panel} --")
        for name in sorted(algorithms):
            values = algorithms[name]
            finite = [v for v in values if np.isfinite(v)]
            stats = (
                f"min {min(finite):.3g} max {max(finite):.3g}"
                if finite
                else "all NaN"
            )
            chunks.append(
                f"  {name:>12} {sparkline(values, width=width)}  [{stats}]"
            )
    return "\n".join(chunks)
