"""Long-running decision serving for registry-constructed controllers.

Where :func:`repro.sim.run_simulation` drives a controller against a
*simulated* demand model for a fixed horizon, :mod:`repro.serve` drives
the same controller against demand arriving *over the wire*, open-ended:

* :class:`ServeConfig` — world identity (registry names + seed, exactly
  a campaign scenario) plus the serving knobs (buffer bound, checkpoint
  cadence, shutdown budget);
* :class:`DecisionServer` — the slot-clocked engine: buffered async
  ingest, a ``decide(slot) -> Placement`` API, periodic checkpoints
  through :mod:`repro.state` with **bit-identical warm restart**, and a
  drain-then-checkpoint shutdown path;
* :mod:`repro.serve.protocol` — a line-delimited JSON front-end over
  TCP or stdio (stdlib only);
* :class:`MetricsExporter` — ``GET /metrics`` in Prometheus text
  format, names validated against the :mod:`repro.obs.names` catalogue;
* :func:`serve` — the blocking entry point the ``repro serve`` CLI
  subcommand uses (signals, banners, transports).

Quick in-process use::

    from repro.serve import DecisionServer, ServeConfig

    server = DecisionServer(ServeConfig(controller="OL_GD", seed=7))
    server.start()
    server.offer(request=3, volume_mb=1.5)
    placement = server.decide()          # closes slot 0
    server.stop()                        # drain + checkpoint (if configured)
"""

from repro.serve.config import (
    DEFAULT_BUFFER_LIMIT,
    DEFAULT_SHUTDOWN_TIMEOUT,
    ServeConfig,
)
from repro.serve.exporter import PROMETHEUS_CONTENT_TYPE, MetricsExporter
from repro.serve.ingest import Offer, SlotBuffer
from repro.serve.lifecycle import (
    DRAINING,
    NEW,
    RUNNING,
    STATES,
    STOPPED,
    Lifecycle,
    LifecycleError,
)
from repro.serve.protocol import (
    ERROR_CODES,
    ProtocolServer,
    handle_line,
    handle_request,
    request_over_socket,
    serve_stdio,
)
from repro.serve.runner import serve
from repro.serve.server import DecisionServer, Placement, ServeError

__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "DEFAULT_SHUTDOWN_TIMEOUT",
    "DRAINING",
    "ERROR_CODES",
    "NEW",
    "PROMETHEUS_CONTENT_TYPE",
    "RUNNING",
    "STATES",
    "STOPPED",
    "DecisionServer",
    "Lifecycle",
    "LifecycleError",
    "MetricsExporter",
    "Offer",
    "Placement",
    "ProtocolServer",
    "ServeConfig",
    "ServeError",
    "SlotBuffer",
    "handle_line",
    "handle_request",
    "request_over_socket",
    "serve",
    "serve_stdio",
]
