"""The ``serve()`` front-end: wire a decision server to its transports.

:func:`serve` is what ``repro serve`` (the CLI) and the subprocess
lifecycle tests call: it builds a :class:`~repro.serve.server.DecisionServer`
from a :class:`~repro.serve.config.ServeConfig`, starts the requested
front-ends (line-JSON TCP and/or stdio, optional HTTP metrics exporter),
installs SIGTERM/SIGINT handlers that *request* shutdown (the actual
drain-then-checkpoint runs on the main thread — signal handlers only set
an event), and blocks until shutdown completes.

The startup banner lines are machine-readable on purpose::

    serving on 127.0.0.1:40213
    metrics on 127.0.0.1:40214

so a parent process can scrape the ephemeral ports; they are written to
``stdout`` and flushed before the serve loop starts.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import IO, Optional

from repro.serve.config import ServeConfig
from repro.serve.exporter import MetricsExporter
from repro.serve.protocol import ProtocolServer, serve_stdio
from repro.serve.server import DecisionServer

__all__ = ["serve"]


def serve(
    config: ServeConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    metrics_port: Optional[int] = None,
    max_connections: int = 8,
    install_signal_handlers: bool = True,
    banner: Optional[IO[str]] = None,
) -> int:
    """Run a decision server until shutdown; returns an exit code.

    ``stdio=True`` pumps the protocol over this process's stdin/stdout
    (the banner then goes to ``stderr`` so protocol responses stay
    clean); otherwise a TCP front-end listens on ``host:port`` (``0``
    picks an ephemeral port, announced in the banner).  ``metrics_port``
    (``0`` for ephemeral) additionally starts the Prometheus exporter.
    ``install_signal_handlers=False`` leaves signal wiring to the caller
    (required off the main thread, e.g. in-process tests).
    """
    server = DecisionServer(config)
    server.start()

    if install_signal_handlers:

        def _request(signum: int, frame: object) -> None:
            server.request_shutdown()

        signal.signal(signal.SIGTERM, _request)
        signal.signal(signal.SIGINT, _request)

    out = banner if banner is not None else (
        sys.stderr if stdio else sys.stdout
    )
    exporter: Optional[MetricsExporter] = None
    tcp: Optional[ProtocolServer] = None
    try:
        if metrics_port is not None:
            exporter = MetricsExporter(server, host=host, port=metrics_port)
            exporter.start()
            print(f"metrics on {host}:{exporter.port}", file=out, flush=True)
        if stdio:
            print("serving on stdio", file=out, flush=True)
            serve_stdio(server, sys.stdin, sys.stdout)
        else:
            tcp = ProtocolServer(
                server, host=host, port=port, max_connections=max_connections
            )
            tcp.start_background()
            print(f"serving on {host}:{tcp.port}", file=out, flush=True)
            # The main thread owns shutdown: wait for the signal/protocol
            # event, then drain.  A bounded wait keeps KeyboardInterrupt
            # deliverable on platforms where Event.wait blocks signals.
            while not server.shutdown_requested:
                server.wait_shutdown(0.2)
        server.stop()
        return 0
    except KeyboardInterrupt:
        server.request_shutdown()
        server.stop()
        return 0
    finally:
        if tcp is not None:
            tcp.stop_background()
        if exporter is not None:
            exporter.stop()
