"""Line-delimited JSON protocol over TCP or stdio (stdlib only).

One request per line, one response per line.  Every request is a JSON
object with an ``"op"`` field; every response carries ``"ok"``::

    -> {"op": "offer", "request": 3, "volume_mb": 1.5}
    <- {"ok": true, "accepted": true, "slot": 0, "buffer_fill": 1}
    -> {"op": "decide"}
    <- {"ok": true, "placement": {"slot": 0, "station_of": [...], ...}}
    -> {"op": "shutdown"}
    <- {"ok": true, "state": "draining"}

Failures answer ``{"ok": false, "error": <code>, "detail": <text>}``
with machine-stable error codes (``bad_request``, ``unknown_op``,
``buffer_full``, ``bad_slot``, ``not_running``, ``internal``) — the
detail text is for humans and may change.

Operations
----------

``offer``     buffer demand for the open slot (``request``, ``volume_mb``)
``decide``    close the open slot, return its placement (optional
              ``slot`` asserts the caller's clock)
``status``    operational summary (state, slot, buffer, totals)
``metrics``   the telemetry registry in Prometheus text format
``checkpoint``  force a snapshot now (needs a configured checkpoint dir)
``shutdown``  request a drain-then-checkpoint stop
``ping``      liveness probe

The same :func:`handle_request` dispatcher backs both front-ends:
:class:`ProtocolServer` (a threading TCP server whose concurrent
connection count is bounded by ``max_connections``) and
:func:`serve_stdio` (a poll loop over stdin/stdout for pipe-driven
clients and the subprocess lifecycle tests).
"""

from __future__ import annotations

import json
import selectors
import socket
import socketserver
import threading
from typing import IO, TYPE_CHECKING, Any, Callable, Dict, Optional

from repro import obs
from repro.serve.lifecycle import DRAINING, STOPPED
from repro.serve.server import ServeError

if TYPE_CHECKING:
    from repro.serve.server import DecisionServer

__all__ = [
    "ERROR_CODES",
    "ProtocolServer",
    "handle_line",
    "handle_request",
    "request_over_socket",
    "serve_stdio",
]

#: Machine-stable error codes a response's ``"error"`` field may carry.
ERROR_CODES = (
    "bad_request",
    "unknown_op",
    "buffer_full",
    "bad_slot",
    "not_running",
    "internal",
)


def _error(code: str, detail: str) -> Dict[str, Any]:
    assert code in ERROR_CODES
    return {"ok": False, "error": code, "detail": detail}


def _op_offer(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    try:
        request = int(payload["request"])
        volume = float(payload["volume_mb"])
    except (KeyError, TypeError, ValueError):
        return _error(
            "bad_request", "offer needs integer 'request' and float 'volume_mb'"
        )
    try:
        accepted = server.offer(request, volume)
    except ValueError as exc:
        return _error("bad_request", str(exc))
    except ServeError as exc:
        return _error("not_running", str(exc))
    response: Dict[str, Any] = {
        "ok": True,
        "accepted": accepted,
        "slot": server.slot,
        "buffer_fill": server.status()["buffer_fill"],
    }
    if not accepted:
        response["ok"] = False
        response["error"] = "buffer_full"
        response["detail"] = (
            f"slot {server.slot} buffer is full "
            f"({server.config.buffer_limit} offers); offer rejected"
        )
    return response


def _op_decide(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    slot: Optional[int] = None
    if payload.get("slot") is not None:
        try:
            slot = int(payload["slot"])
        except (TypeError, ValueError):
            return _error("bad_request", "'slot' must be an integer")
    try:
        placement = server.decide(slot)
    except ServeError as exc:
        code = "bad_slot" if "slot mismatch" in str(exc) else "not_running"
        return _error(code, str(exc))
    return {"ok": True, "placement": placement.to_json()}


def _op_status(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"ok": True, "status": server.status()}


def _op_metrics(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    try:
        text = obs.render_prometheus(server.metrics)
    except ServeError as exc:
        return _error("not_running", str(exc))
    return {"ok": True, "metrics": text}


def _op_checkpoint(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    try:
        path = server.write_checkpoint()
    except ServeError as exc:
        return _error("not_running", str(exc))
    if path is None:
        return _error(
            "bad_request", "server has no checkpoint_dir configured"
        )
    return {"ok": True, "checkpoint": str(path), "slot": server.slot}


def _op_shutdown(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    server.request_shutdown()
    return {"ok": True, "state": DRAINING}


def _op_ping(server: "DecisionServer", payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"ok": True, "state": server.state, "slot": server.slot}


_OPS: Dict[str, Callable[["DecisionServer", Dict[str, Any]], Dict[str, Any]]] = {
    "offer": _op_offer,
    "decide": _op_decide,
    "status": _op_status,
    "metrics": _op_metrics,
    "checkpoint": _op_checkpoint,
    "shutdown": _op_shutdown,
    "ping": _op_ping,
}


def handle_request(
    server: "DecisionServer", payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Dispatch one decoded request object to the server; never raises."""
    if not isinstance(payload, dict):
        return _error("bad_request", "request must be a JSON object")
    op = payload.get("op")
    handler = _OPS.get(op) if isinstance(op, str) else None
    if handler is None:
        return _error(
            "unknown_op",
            f"unknown op {op!r}; known: {sorted(_OPS)}",
        )
    try:
        return handler(server, payload)
    except Exception as exc:  # pragma: no cover - defensive belt
        return _error("internal", f"{type(exc).__name__}: {exc}")


def handle_line(server: "DecisionServer", line: str) -> str:
    """Decode one protocol line, dispatch it, encode the response."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return json.dumps(_error("bad_request", f"invalid JSON: {exc}"))
    return json.dumps(handle_request(server, payload))


class _Handler(socketserver.StreamRequestHandler):
    """One TCP connection: read lines, answer lines, until EOF."""

    def handle(self) -> None:
        tcp: "ProtocolServer" = self.server  # type: ignore[assignment]
        with tcp.connection_slot():
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = handle_line(tcp.decision_server, line)
                try:
                    self.wfile.write(response.encode("utf-8") + b"\n")
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return


class ProtocolServer(socketserver.ThreadingTCPServer):
    """The TCP front-end: line-JSON protocol over a bounded thread pool.

    ``max_connections`` bounds concurrently-served connections (mapping
    the CLI's ``--jobs`` flag onto the serving layer); excess
    connections block in :meth:`connection_slot` until a slot frees.
    Pass ``port=0`` to bind an ephemeral port (tests); the bound port is
    :attr:`port`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        decision_server: "DecisionServer",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 8,
    ) -> None:
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be positive, got {max_connections}"
            )
        self.decision_server = decision_server
        self._slots = threading.BoundedSemaphore(max_connections)
        super().__init__((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        return int(self.server_address[1])

    def connection_slot(self) -> "_ConnectionSlot":
        """Context manager holding one of the bounded connection slots."""
        return _ConnectionSlot(self._slots)

    def start_background(self) -> None:
        """Serve forever on a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="serve-protocol",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()

    def stop_background(self) -> None:
        """Shut the accept loop down and join the serving thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()


class _ConnectionSlot:
    def __init__(self, slots: threading.BoundedSemaphore) -> None:
        self._slots = slots

    def __enter__(self) -> None:
        self._slots.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self._slots.release()


def serve_stdio(
    decision_server: "DecisionServer",
    stdin: IO[str],
    stdout: IO[str],
    *,
    poll_interval: float = 0.1,
) -> None:
    """Pump the protocol over text streams until EOF or server shutdown.

    Uses a selector with a bounded poll so a SIGTERM-driven
    ``request_shutdown`` is noticed even while idle (a blocking
    ``readline`` would pin the loop until the next request).  Falls back
    to blocking reads when the stream cannot be selected on (StringIO in
    tests, some pipes on exotic platforms).
    """
    selector: Optional[selectors.BaseSelector]
    try:
        selector = selectors.DefaultSelector()
        selector.register(stdin, selectors.EVENT_READ)
    except (ValueError, OSError, PermissionError):
        selector = None
    try:
        while not decision_server.shutdown_requested:
            if decision_server.lifecycle.is_in(DRAINING, STOPPED):
                return
            if selector is not None and not selector.select(poll_interval):
                continue
            line = stdin.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            stdout.write(handle_line(decision_server, line) + "\n")
            stdout.flush()
    finally:
        if selector is not None:
            selector.close()


def request_over_socket(
    host: str, port: int, payload: Dict[str, Any], *, timeout: float = 10.0
) -> Dict[str, Any]:
    """One-shot client helper: send one request, return the response.

    Used by the CLI's client-side ops and the protocol tests; opens a
    fresh connection per call (the server multiplexes lines within one
    connection too — this is just the simplest client shape).
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        stream = conn.makefile("r", encoding="utf-8")
        line = stream.readline()
    if not line:
        raise ConnectionError(f"no response from {host}:{port}")
    response = json.loads(line)
    if not isinstance(response, dict):
        raise ConnectionError(f"malformed response from {host}:{port}")
    return response
