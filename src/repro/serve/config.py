"""Configuration of a decision server: world identity + serving knobs.

:class:`ServeConfig` names every component of the served world through
the same registries a declarative campaign uses (topology, workload,
controller — see :mod:`repro.campaigns.spec`), plus the knobs that only
exist when the controller runs as a service: the ingest buffer bound,
the checkpoint cadence, the shutdown budget.

The scenario half of the config *is* the identity of the server's world:
:meth:`ServeConfig.scenario_digest` hashes it together with the seed,
and warm restarts refuse a checkpoint whose digest differs — resuming a
controller into a different world would silently break the bit-identity
contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.campaigns.spec import ScenarioSpec
from repro.state import snapshot_slug

__all__ = ["ServeConfig", "DEFAULT_BUFFER_LIMIT", "DEFAULT_SHUTDOWN_TIMEOUT"]

#: Default bound on pending offers per slot.
DEFAULT_BUFFER_LIMIT = 1024

#: Default drain budget (seconds) for :meth:`DecisionServer.stop`.
DEFAULT_SHUTDOWN_TIMEOUT = 10.0


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`repro.serve.DecisionServer` needs.

    World identity (registry names + sizes + seed) mirrors
    :class:`repro.campaigns.spec.ScenarioSpec`; ``horizon`` sizes the
    synthetic user trace the world is anchored on (serving is open-ended
    — the slot clock may run past it, demand arrives over the wire).

    Serving knobs:

    ``buffer_limit``
        Maximum offers buffered for the open slot; overflow is rejected
        and counted (``serve.rejected``).
    ``demands_known``
        §IV versus §V setting: ``True`` hands the aggregated demand
        vector to the controller's ``decide``; ``False`` makes the
        controller predict internally (the ingested demand is then only
        used for evaluation and ``observe``).
    ``checkpoint_dir`` / ``checkpoint_every`` / ``resume``
        Same concepts as :class:`repro.sim.RunConfig`: snapshot the
        server every ``checkpoint_every`` completed slots under
        ``checkpoint_dir``, and with ``resume=True`` warm-restart from
        an existing snapshot (bit-identical continuation).
    ``tick_interval``
        Seconds between automatic slot ticks; ``None`` (default) leaves
        the clock to explicit ``decide`` calls — deterministic serving
        for tests and batch drivers.
    ``shutdown_timeout``
        Bound (seconds) on the drain-then-checkpoint path of ``stop``.
    """

    controller: str = "OL_GD"
    topology: str = "gtitm"
    workload: str = "bursty"
    seed: int = 2020
    horizon: int = 1000
    n_stations: Optional[int] = None
    n_services: int = 4
    n_requests: int = 30
    n_hotspots: int = 5
    drift_ms: float = 0.5
    capacity_headroom: Optional[float] = 2.0
    topology_options: Mapping[str, Any] = field(default_factory=dict)
    workload_options: Mapping[str, Any] = field(default_factory=dict)
    controller_options: Mapping[str, Any] = field(default_factory=dict)
    # ---- serving knobs ----------------------------------------------- #
    buffer_limit: int = DEFAULT_BUFFER_LIMIT
    demands_known: bool = True
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_every: Optional[int] = None
    resume: bool = False
    tick_interval: Optional[float] = None
    shutdown_timeout: float = DEFAULT_SHUTDOWN_TIMEOUT

    def __post_init__(self) -> None:
        if self.buffer_limit < 1:
            raise ValueError(
                f"buffer_limit must be positive, got {self.buffer_limit}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if (
            self.checkpoint_every is not None or self.resume
        ) and self.checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every/resume require checkpoint_dir"
            )
        if self.tick_interval is not None and self.tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive, got {self.tick_interval}"
            )
        if self.shutdown_timeout <= 0:
            raise ValueError(
                f"shutdown_timeout must be positive, got {self.shutdown_timeout}"
            )
        # Early name validation (same registries the campaign layer uses).
        self.scenario_spec().validate_names()

    def scenario_spec(self) -> ScenarioSpec:
        """The world half of the config as a campaign scenario spec."""
        return ScenarioSpec(
            controllers=(self.controller,),
            horizon=self.horizon,
            topology=self.topology,
            workload=self.workload,
            n_stations=self.n_stations,
            n_services=self.n_services,
            n_requests=self.n_requests,
            n_hotspots=self.n_hotspots,
            drift_ms=self.drift_ms,
            capacity_headroom=self.capacity_headroom,
            topology_options=dict(self.topology_options),
            workload_options=dict(self.workload_options),
            controller_options={self.controller: dict(self.controller_options)},
        )

    def scenario_digest(self) -> str:
        """Stable hash of the world identity (checkpoint compatibility key).

        Covers the scenario fields and the seed — everything that shapes
        the built world — and deliberately excludes the serving knobs:
        changing the buffer limit or checkpoint cadence must not orphan
        an otherwise-valid snapshot.
        """
        payload = {
            "controller": self.controller,
            "topology": self.topology,
            "workload": self.workload,
            "seed": self.seed,
            "horizon": self.horizon,
            "n_stations": self.n_stations,
            "n_services": self.n_services,
            "n_requests": self.n_requests,
            "n_hotspots": self.n_hotspots,
            "drift_ms": self.drift_ms,
            "capacity_headroom": self.capacity_headroom,
            "topology_options": dict(self.topology_options),
            "workload_options": dict(self.workload_options),
            "controller_options": dict(self.controller_options),
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def snapshot_path(self) -> Optional[Path]:
        """The server's snapshot file, or ``None`` without a checkpoint dir."""
        if self.checkpoint_dir is None:
            return None
        return (
            Path(self.checkpoint_dir)
            / f"serve-{snapshot_slug(self.controller)}.npz"
        )
