"""Bounded per-slot ingest buffer with rejection accounting.

Offers (one user request worth of demand for the *current* slot) arrive
asynchronously from protocol handler threads; the slot clock drains the
buffer into a dense demand vector when the slot closes.  The buffer is
bounded: once ``limit`` offers are pending, further offers are rejected
and counted — admission control is part of the serving contract (the
queue/rejection metrics icarus-style evaluations report), not an error.

Determinism note: the demand vector is accumulated in *arrival order*,
and a warm restart restores the pending offers in that same order, so
the float summation order — and therefore the resumed decision trace —
is bit-identical to an uninterrupted run fed the same offers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Offer", "SlotBuffer"]


@dataclass(frozen=True)
class Offer:
    """One ingested request: ``volume_mb`` of demand for ``request``."""

    request: int
    volume_mb: float


class SlotBuffer:
    """Thread-safe bounded buffer of the open slot's offers.

    Parameters
    ----------
    n_requests:
        Size of the demand vector; offers must reference a request index
        in ``[0, n_requests)``.
    limit:
        Maximum pending offers per slot; an offer arriving at a full
        buffer is rejected (returned ``False`` and counted).
    """

    def __init__(self, n_requests: int, limit: int) -> None:
        if n_requests < 1:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        self.n_requests = int(n_requests)
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._pending: List[Offer] = []
        self._slot_rejected = 0
        self.offered_total = 0
        self.rejected_total = 0

    def offer(self, request: int, volume_mb: float) -> bool:
        """Buffer one offer; False when the buffer is full (rejected).

        Raises :class:`ValueError` on a malformed offer (out-of-range
        request index, non-positive or non-finite volume) — malformed
        input is a caller error, not admission control.
        """
        index = int(request)
        volume = float(volume_mb)
        if not 0 <= index < self.n_requests:
            raise ValueError(
                f"request index {index} outside [0, {self.n_requests})"
            )
        if not np.isfinite(volume) or volume <= 0.0:
            raise ValueError(f"volume_mb must be positive and finite, got {volume}")
        with self._lock:
            if len(self._pending) >= self.limit:
                self._slot_rejected += 1
                self.rejected_total += 1
                return False
            self._pending.append(Offer(index, volume))
            self.offered_total += 1
            return True

    @property
    def fill(self) -> int:
        """Number of offers currently pending for the open slot."""
        with self._lock:
            return len(self._pending)

    def roll(self, dtype: np.dtype = np.dtype(np.float64)) -> Tuple[np.ndarray, int, int]:
        """Close the slot: ``(demand_vector, n_offers, n_rejected)``.

        Aggregates the pending offers into a dense per-request demand
        vector (arrival-order summation) and resets the buffer for the
        next slot.
        """
        with self._lock:
            pending = self._pending
            rejected = self._slot_rejected
            self._pending = []
            self._slot_rejected = 0
        demand = np.zeros(self.n_requests, dtype=dtype)
        for entry in pending:
            demand[entry.request] += entry.volume_mb
        return demand, len(pending), rejected

    # ---- checkpoint support ------------------------------------------ #

    def pending_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """The open slot's offers as ``(request_indices, volumes)`` arrays.

        Arrival order is preserved — restoring these arrays reproduces
        the exact summation order of the interrupted slot.
        """
        with self._lock:
            requests = np.array(
                [entry.request for entry in self._pending], dtype=np.int64
            )
            volumes = np.array(
                [entry.volume_mb for entry in self._pending], dtype=np.float64
            )
        return requests, volumes

    def restore_pending(
        self, requests: np.ndarray, volumes: np.ndarray
    ) -> None:
        """Reload a checkpointed open slot (replaces any pending offers)."""
        if requests.shape != volumes.shape:
            raise ValueError(
                f"{requests.shape[0]} request indices for "
                f"{volumes.shape[0]} volumes"
            )
        entries = [
            Offer(int(request), float(volume))
            for request, volume in zip(requests, volumes)
        ]
        if len(entries) > self.limit:
            raise ValueError(
                f"checkpoint holds {len(entries)} pending offers but the "
                f"buffer limit is {self.limit}"
            )
        with self._lock:
            self._pending = entries
