"""The long-running decision server: slot-clocked online caching control.

:class:`DecisionServer` wraps one registry-constructed controller behind
the same per-slot contract as :func:`repro.sim.run_simulation` — decide,
evaluate, observe — but with demand arriving *over the wire* instead of
from a simulated demand model:

1. clients ``offer`` demand for the open slot (bounded buffer, overflow
   rejected and counted);
2. ``decide`` closes the slot: the buffered offers aggregate into a
   demand vector, the controller places services, the assignment is
   evaluated against the slot's realised delays, and the controller
   observes the outcome;
3. every ``checkpoint_every`` completed slots the whole server state
   (controller, ingest buffer, decision trace) snapshots through
   :mod:`repro.state`; a server constructed with ``resume=True``
   warm-restarts from the snapshot and continues **bit-identically** —
   the delay processes are slot-keyed counter-based draws and the
   controller's RNG bit-state rides in its ``state_dict``, so the
   reconstructed decision trace equals an uninterrupted run's.

Thread model: offers may arrive from any number of protocol threads
(:class:`~repro.serve.ingest.SlotBuffer` is internally locked); slot
ticks and checkpoints serialise on one server lock.  Shutdown drains —
new offers are rejected, the in-flight tick finishes, the open slot's
pending offers are checkpointed — within the config's bounded
``shutdown_timeout``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.campaigns.scenario import CampaignScenario
from repro.core.assignment import Assignment, SlotEvaluator
from repro.serve.config import ServeConfig
from repro.serve.ingest import SlotBuffer
from repro.serve.lifecycle import (
    DRAINING,
    NEW,
    RUNNING,
    STOPPED,
    Lifecycle,
    LifecycleError,
)
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.state import (
    SERVE_KIND,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.seeding import RngRegistry

__all__ = ["DecisionServer", "Placement", "ServeError"]


class ServeError(RuntimeError):
    """A serving-layer operation failed (bad slot, wrong state, timeout)."""


@dataclass(frozen=True)
class Placement:
    """One slot's decision: where every request is served, what is cached.

    The wire-facing result of ``decide`` — everything a client needs to
    route traffic for the slot, plus the evaluation the telemetry layer
    records.  ``decision_seconds`` is wall-clock and therefore excluded
    from trace-identity comparisons (exactly like the simulation
    engine's timing columns).
    """

    slot: int
    station_of: Tuple[int, ...]
    cached: Tuple[Tuple[int, int], ...]
    delay_ms: float
    n_offers: int
    rejected: int
    decision_seconds: float

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form for the JSON protocol."""
        return {
            "slot": self.slot,
            "station_of": list(self.station_of),
            "cached": [list(pair) for pair in self.cached],
            "delay_ms": self.delay_ms,
            "n_offers": self.n_offers,
            "rejected": self.rejected,
            "decision_seconds": self.decision_seconds,
        }

    def trace_key(self) -> Tuple[Any, ...]:
        """The deterministic fields (what warm-restart tests compare)."""
        return (
            self.slot,
            self.station_of,
            self.cached,
            self.delay_ms,
            self.n_offers,
            self.rejected,
        )


class DecisionServer:
    """A controller served as a long-running, checkpointed process.

    Construction is cheap; :meth:`start` builds the world (topology,
    requests, controller — all through the registries) and, when the
    config says so, warm-restarts from an existing snapshot.  ``start``
    and ``stop`` are idempotent; a stopped server stays stopped.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.lifecycle = Lifecycle()
        self._lock = threading.RLock()
        self._shutdown = threading.Event()
        self._clock: Optional[threading.Thread] = None
        self._metrics: Optional[obs.MetricsRegistry] = None
        self._buffer: Optional[SlotBuffer] = None
        self._slot = 0
        self._previous: Optional[Assignment] = None
        self._placements: List[Placement] = []
        self._restored_slots = 0

    # ---- lifecycle ---------------------------------------------------- #

    @property
    def state(self) -> str:
        """Current lifecycle state (``new``/``running``/``draining``/``stopped``)."""
        return self.lifecycle.state

    @property
    def slot(self) -> int:
        """The open slot index (number of completed slots)."""
        return self._slot

    @property
    def metrics(self) -> obs.MetricsRegistry:
        """The registry serving telemetry records into (created on start)."""
        if self._metrics is None:
            raise ServeError("server not started; no metrics registry yet")
        return self._metrics

    def start(self) -> None:
        """Build the world and begin serving; no-op when already running.

        With ``config.resume=True`` and an existing snapshot, the server
        warm-restarts: controller state (including RNG bit-state), the
        decision trace, the rejection accounting and the interrupted
        slot's pending offers are all restored, so the continuation is
        bit-identical to never having stopped.
        """
        with self._lock:
            if self.lifecycle.is_in(RUNNING):
                return
            if self.lifecycle.is_in(DRAINING, STOPPED):
                raise ServeError(
                    "cannot restart a stopped server; construct a new "
                    "DecisionServer (resume=True warm-restarts from the "
                    "checkpoint)"
                )
            config = self.config
            rngs = RngRegistry(seed=config.seed).child("serve")
            scenario = CampaignScenario(config.scenario_spec())
            network, demand_model, controllers = scenario(rngs)
            self.network = network
            self.demand_model = demand_model
            self.controller = controllers[0]
            self.requests = self.controller.requests
            self._evaluator = SlotEvaluator(network, self.requests)
            self._buffer = SlotBuffer(
                n_requests=len(self.requests), limit=config.buffer_limit
            )
            self._result = SimulationResult(
                controller_name=self.controller.name
            )
            self._metrics = obs.active_registry() or obs.MetricsRegistry()
            snapshot = config.snapshot_path()
            if config.resume and snapshot is not None and snapshot.exists():
                self._restore(snapshot)
            self.lifecycle.to(RUNNING)
            if config.tick_interval is not None:
                self._clock = threading.Thread(
                    target=self._clock_loop, name="serve-clock", daemon=True
                )
                self._clock.start()

    def request_shutdown(self) -> None:
        """Flag the server for shutdown (safe to call from signal handlers).

        Only sets an event — the owning loop (``repro.serve.serve`` or a
        test harness) observes it and runs the actual drain via
        :meth:`stop`, which must not happen inside a signal handler.
        """
        self._shutdown.set()

    @property
    def shutdown_requested(self) -> bool:
        """Whether :meth:`request_shutdown` has been called."""
        return self._shutdown.is_set()

    def wait_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is requested (or ``timeout`` elapses)."""
        return self._shutdown.wait(timeout)

    def stop(self, *, timeout: Optional[float] = None) -> None:
        """Drain, checkpoint, stop; idempotent, bounded by ``timeout``.

        The drain sequence: move to ``draining`` (new offers are now
        refused), stop the slot clock, wait for any in-flight tick to
        finish (bounded), snapshot the full server state — including the
        open slot's pending offers — and move to ``stopped``.  A timeout
        raises :class:`ServeError` after forcing the terminal state
        (without a checkpoint: a torn snapshot would be worse).
        """
        budget = timeout if timeout is not None else self.config.shutdown_timeout
        if self.lifecycle.is_in(STOPPED):
            return
        if self.lifecycle.is_in(NEW):
            self.lifecycle.to(STOPPED)
            return
        try:
            self.lifecycle.to(DRAINING)
        except LifecycleError:
            # Lost the race against a concurrent stop(); it owns the drain.
            self.lifecycle.wait_for(STOPPED, timeout=budget)
            return
        self._shutdown.set()
        clock = self._clock
        if clock is not None:
            clock.join(timeout=budget)
        acquired = self._lock.acquire(timeout=budget)
        if not acquired:
            self.lifecycle.to(STOPPED)
            raise ServeError(
                f"shutdown timed out after {budget:.1f}s waiting for the "
                "in-flight slot; stopped WITHOUT writing a checkpoint"
            )
        try:
            self.write_checkpoint()
        finally:
            self._lock.release()
            self.lifecycle.to(STOPPED)

    # ---- serving ------------------------------------------------------ #

    def offer(self, request: int, volume_mb: float) -> bool:
        """Ingest one offer for the open slot; False when rejected (full).

        Raises :class:`ServeError` outside the ``running`` state and
        :class:`ValueError` on malformed offers (see
        :meth:`repro.serve.ingest.SlotBuffer.offer`).
        """
        buffer = self._buffer
        if buffer is None or not self.lifecycle.is_in(RUNNING):
            raise ServeError(
                f"cannot ingest offers in state {self.lifecycle.state!r}"
            )
        accepted = buffer.offer(request, volume_mb)
        with obs.activate(self._metrics):
            if accepted:
                obs.inc("serve.offers")
            else:
                obs.inc("serve.rejected")
            obs.gauge("serve.buffer_fill", buffer.fill)
        return accepted

    def decide(self, slot: Optional[int] = None) -> Placement:
        """Close the open slot and return its placement decision.

        ``slot`` (optional) asserts the caller's idea of the clock: a
        mismatch raises :class:`ServeError` instead of silently deciding
        a different slot — the guard that makes the wire protocol safe
        to retry.
        """
        with self._lock:
            if not self.lifecycle.is_in(RUNNING):
                raise ServeError(
                    f"cannot decide in state {self.lifecycle.state!r}"
                )
            buffer = self._buffer
            assert buffer is not None  # set by start()
            if slot is not None and int(slot) != self._slot:
                raise ServeError(
                    f"slot mismatch: server clock is at {self._slot}, "
                    f"caller asked for {int(slot)}"
                )
            current = self._slot
            with obs.activate(self._metrics), obs.span("serve.decide"):
                demands, n_offers, rejected = buffer.roll()
                unit_delays = self.network.delays.sample(current)
                started = perf_counter()
                assignment = self.controller.decide(
                    current, demands if self.config.demands_known else None
                )
                decision_seconds = perf_counter() - started
                delay_ms = self._evaluator.evaluate(
                    assignment, demands, unit_delays
                )
                observe_started = perf_counter()
                self.controller.observe(
                    current, demands, unit_delays, assignment
                )
                observe_seconds = perf_counter() - observe_started
                prediction_mae: Optional[float] = None
                last_prediction = getattr(
                    self.controller, "last_prediction", None
                )
                if not self.config.demands_known and last_prediction is not None:
                    prediction_mae = float(
                        np.mean(np.abs(last_prediction - demands))
                    )
                loads = self._evaluator.loads_mhz(assignment, demands)
                churn = (
                    assignment.cache_churn(self._previous)
                    if self._previous is not None
                    else 0
                )
                initial = (
                    len(assignment.cached) if self._previous is None else 0
                )
                self._result.append(
                    SlotRecord(
                        slot=current,
                        average_delay_ms=delay_ms,
                        decision_seconds=decision_seconds,
                        observe_seconds=observe_seconds,
                        cache_churn=churn,
                        n_cached_instances=len(assignment.cached),
                        max_load_fraction=float(
                            np.max(loads / self._evaluator.capacities_mhz)
                        ),
                        optimal_delay_ms=None,
                        prediction_mae_mb=prediction_mae,
                        initial_instantiations=initial,
                    )
                )
                placement = Placement(
                    slot=current,
                    station_of=tuple(
                        int(s) for s in assignment.station_of
                    ),
                    cached=tuple(
                        (int(service), int(station))
                        for service, station in assignment.cached_array()
                    ),
                    delay_ms=float(delay_ms),
                    n_offers=n_offers,
                    rejected=rejected,
                    decision_seconds=decision_seconds,
                )
                self._placements.append(placement)
                self._previous = assignment
                self._slot += 1
                obs.inc("serve.slots")
                obs.gauge("serve.buffer_fill", 0)
            every = self.config.checkpoint_every
            if every is not None and self._slot % every == 0:
                self.write_checkpoint()
        return placement

    def placement_history(self) -> Tuple[Placement, ...]:
        """Every placement decided so far, oldest first.

        After a warm restart this includes the placements reconstructed
        from the snapshot, so the full trace is comparable against an
        uninterrupted run's.
        """
        return tuple(self._placements)

    @property
    def result(self) -> SimulationResult:
        """The per-slot metric series (same schema as the simulation engine's)."""
        return self._result

    def status(self) -> Dict[str, Any]:
        """A JSON-able operational summary (the protocol's ``status`` op)."""
        buffer = self._buffer
        return {
            "state": self.lifecycle.state,
            "controller": self.config.controller,
            "slot": self._slot,
            "buffer_fill": buffer.fill if buffer is not None else 0,
            "buffer_limit": self.config.buffer_limit,
            "offered_total": buffer.offered_total if buffer is not None else 0,
            "rejected_total": buffer.rejected_total if buffer is not None else 0,
            "restored_slots": self._restored_slots,
            "checkpoint": (
                str(self.config.snapshot_path())
                if self.config.checkpoint_dir is not None
                else None
            ),
        }

    # ---- checkpointing ------------------------------------------------ #

    def write_checkpoint(self) -> Optional[Path]:
        """Snapshot the full server state; None without a checkpoint dir.

        The snapshot carries everything a bit-identical continuation
        needs: controller state (with RNG bit-state), the decision trace
        (stations per slot, offer/rejection counts, the metric series),
        the previous slot's assignment (churn is measured between
        slots), and the open slot's pending offers in arrival order.
        """
        path = self.config.snapshot_path()
        if path is None:
            return None
        buffer = self._buffer
        if buffer is None:
            raise ServeError("server not started; nothing to checkpoint")
        with self._lock:
            pending_requests, pending_volumes = buffer.pending_state()
            stations = (
                np.stack([p.station_of for p in self._placements])
                if self._placements
                else np.zeros((0, len(self.requests)), dtype=np.int64)
            ).astype(np.int64)
            previous = (
                np.asarray(self._previous.station_of, dtype=np.int64)
                if self._previous is not None
                else np.full(len(self.requests), -1, dtype=np.int64)
            )
            state = {
                "controller_name": self.controller.name,
                "controller": self.controller.state_dict(),
                "result": self._result.state_dict(),
                "slot": np.int64(self._slot),
                "previous_stations": previous,
                "stations": stations,
                "slot_offers": np.array(
                    [p.n_offers for p in self._placements], dtype=np.int64
                ),
                "slot_rejected": np.array(
                    [p.rejected for p in self._placements], dtype=np.int64
                ),
                "pending_requests": pending_requests,
                "pending_volumes": pending_volumes,
                "offered_total": np.int64(buffer.offered_total),
                "rejected_total": np.int64(buffer.rejected_total),
            }
            with obs.activate(self._metrics):
                with obs.span("state.save"):
                    save_checkpoint(
                        path,
                        state,
                        kind=SERVE_KIND,
                        meta={
                            "controller": self.controller.name,
                            "slots": self._slot,
                            "scenario_digest": self.config.scenario_digest(),
                        },
                    )
                obs.inc("state.save")
        return path

    def _restore(self, path: Path) -> None:
        """Warm restart: reload a snapshot into the freshly-built world."""
        with obs.activate(self._metrics):
            with obs.span("state.load"):
                state, meta = load_checkpoint(path, kind=SERVE_KIND)
            obs.inc("state.load")
        digest = self.config.scenario_digest()
        if meta.get("scenario_digest") != digest:
            raise CheckpointError(
                f"{path} was written by a server with a different world "
                f"(scenario digest mismatch); refusing to warm-restart"
            )
        if state["controller_name"] != self.controller.name:
            raise CheckpointError(
                f"{path} holds a {state['controller_name']!r} run, this "
                f"server controls {self.controller.name!r}"
            )
        self.controller.load_state_dict(state["controller"])
        self._result = SimulationResult.from_state(state["result"])
        self._slot = int(state["slot"])
        self._restored_slots = self._slot
        previous = np.asarray(state["previous_stations"], dtype=np.int64)
        if self._slot > 0:
            self._previous = Assignment.from_stations(previous, self.requests)
        stations = np.asarray(state["stations"], dtype=np.int64)
        slot_offers = np.asarray(state["slot_offers"], dtype=np.int64)
        slot_rejected = np.asarray(state["slot_rejected"], dtype=np.int64)
        delays = self._result.delays_ms
        decisions = [r.decision_seconds for r in self._result.records]
        self._placements = []
        for index in range(stations.shape[0]):
            assignment = Assignment.from_stations(
                stations[index], self.requests
            )
            self._placements.append(
                Placement(
                    slot=index,
                    station_of=tuple(int(s) for s in stations[index]),
                    cached=tuple(
                        (int(service), int(station))
                        for service, station in assignment.cached_array()
                    ),
                    delay_ms=float(delays[index]),
                    n_offers=int(slot_offers[index]),
                    rejected=int(slot_rejected[index]),
                    decision_seconds=float(decisions[index]),
                )
            )
        buffer = self._buffer
        assert buffer is not None  # set by start() before _restore
        buffer.restore_pending(
            np.asarray(state["pending_requests"], dtype=np.int64),
            np.asarray(state["pending_volumes"], dtype=np.float64),
        )
        buffer.offered_total = int(state["offered_total"])
        buffer.rejected_total = int(state["rejected_total"])

    # ---- slot clock ---------------------------------------------------- #

    def _clock_loop(self) -> None:
        """Automatic slot ticks every ``tick_interval`` seconds."""
        interval = self.config.tick_interval
        assert interval is not None  # thread only started when set
        while not self._shutdown.wait(interval):
            if not self.lifecycle.is_in(RUNNING):
                return
            try:
                self.decide()
            except ServeError:
                return
