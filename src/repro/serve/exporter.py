"""HTTP metrics exporter: ``GET /metrics`` in Prometheus text format.

A thin stdlib ``http.server`` wrapper around
:func:`repro.obs.render_prometheus` — the rendering (name mangling,
counter/gauge/histogram exposition, validation against the
:mod:`repro.obs.names` catalogue) lives in :mod:`repro.obs.prometheus`;
this module only owns the socket.  ``GET /healthz`` answers the server's
lifecycle state for load-balancer probes.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional

from repro.obs import render_prometheus

if TYPE_CHECKING:
    from repro.serve.server import DecisionServer

__all__ = ["MetricsExporter", "PROMETHEUS_CONTENT_TYPE"]

#: The exposition-format content type Prometheus scrapers expect.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    server: "MetricsExporter"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            try:
                body = render_prometheus(
                    self.server.decision_server.metrics
                ).encode("utf-8")
            except Exception as exc:  # registry not up yet, render bug
                self._respond(
                    503, f"metrics unavailable: {exc}\n".encode("utf-8")
                )
                return
            self._respond(200, body, content_type=PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            state = self.server.decision_server.state
            status = 200 if state == "running" else 503
            self._respond(status, f"{state}\n".encode("utf-8"))
        else:
            self._respond(404, b"not found\n")

    def _respond(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsExporter(ThreadingHTTPServer):
    """Background HTTP server exposing a decision server's telemetry.

    Bind with ``port=0`` for an ephemeral port (tests); :attr:`port`
    reports the bound one.  :meth:`start` / :meth:`stop` manage the
    daemon serving thread and are idempotent.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        decision_server: "DecisionServer",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.decision_server = decision_server
        super().__init__((host, port), _MetricsHandler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually-bound HTTP port."""
        return int(self.server_address[1])

    def start(self) -> None:
        """Serve scrapes on a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="serve-metrics",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and join the thread (idempotent)."""
        if self._thread is None:
            self.server_close()
            return
        self.shutdown()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.server_close()
