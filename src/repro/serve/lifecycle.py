"""Decision-server lifecycle: a small validated state machine.

The server moves through four states::

    new -> running -> draining -> stopped
      \\___________________________/

``new`` is a constructed-but-not-started server; ``running`` accepts
offers and slot ticks; ``draining`` rejects new work while the current
slot's buffered offers are checkpointed; ``stopped`` is terminal (a
stopped server is never restarted in place — warm restart happens by
constructing a fresh server over the checkpoint, which is what keeps the
bit-identity argument simple).

:class:`Lifecycle` guards the transitions under a condition variable so
protocol handler threads, the slot clock and the signal-driven shutdown
path all observe one consistent state, and :meth:`Lifecycle.wait_for`
gives the shutdown path its bounded timeout.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "NEW",
    "RUNNING",
    "DRAINING",
    "STOPPED",
    "STATES",
    "Lifecycle",
    "LifecycleError",
]

NEW = "new"
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"

#: All states, in lifecycle order.
STATES: Tuple[str, ...] = (NEW, RUNNING, DRAINING, STOPPED)

_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    NEW: frozenset({RUNNING, STOPPED}),
    RUNNING: frozenset({DRAINING, STOPPED}),
    DRAINING: frozenset({STOPPED}),
    STOPPED: frozenset(),
}


class LifecycleError(RuntimeError):
    """An operation was attempted in a state that does not allow it."""


class Lifecycle:
    """Thread-safe state holder enforcing the serve state machine."""

    def __init__(self) -> None:
        self._state = NEW
        self._condition = threading.Condition()

    @property
    def state(self) -> str:
        """The current state name."""
        with self._condition:
            return self._state

    def is_in(self, *states: str) -> bool:
        """Whether the current state is one of ``states``."""
        with self._condition:
            return self._state in states

    def to(self, state: str) -> bool:
        """Transition to ``state``; returns False when already there.

        Raises :class:`LifecycleError` on a transition the state machine
        does not allow (e.g. restarting a stopped server).
        """
        if state not in _TRANSITIONS:
            raise LifecycleError(f"unknown lifecycle state {state!r}")
        with self._condition:
            if state == self._state:
                return False
            if state not in _TRANSITIONS[self._state]:
                raise LifecycleError(
                    f"cannot move from {self._state!r} to {state!r}; "
                    f"allowed: {sorted(_TRANSITIONS[self._state])}"
                )
            self._state = state
            self._condition.notify_all()
            return True

    def wait_for(self, state: str, *, timeout: float) -> bool:
        """Block until ``state`` is reached; False on timeout."""
        if state not in _TRANSITIONS:
            raise LifecycleError(f"unknown lifecycle state {state!r}")
        with self._condition:
            return self._condition.wait_for(
                lambda: self._state == state, timeout=timeout
            )

    def __repr__(self) -> str:
        return f"Lifecycle(state={self.state!r})"
