"""Wall-clock timing used for the paper's running-time figures (3b, 4b, 6b)."""

from __future__ import annotations

import time
from typing import List, Optional

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulates wall-clock time across repeated start/stop laps.

    The running-time curves in the paper (Fig. 3(b), 4(b), 6(b)) report the
    controller's decision time per slot; the simulation engine wraps each
    controller invocation in a :class:`Stopwatch` lap.

    Can also be used as a context manager::

        watch = Stopwatch()
        with watch:
            controller.decide(...)
        watch.total_seconds
    """

    def __init__(self) -> None:
        self._laps: List[float] = []
        self._started_at: Optional[float] = None

    def start(self) -> None:
        """Begin a lap; raises if a lap is already running."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current lap and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch was not started")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self._laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def laps(self) -> List[float]:
        """Durations of completed laps, in seconds."""
        return list(self._laps)

    @property
    def total_seconds(self) -> float:
        """Sum of all completed laps."""
        return sum(self._laps)

    @property
    def mean_seconds(self) -> float:
        """Mean lap duration (0.0 when no laps have completed)."""
        if not self._laps:
            return 0.0
        return self.total_seconds / len(self._laps)

    def reset(self) -> None:
        """Discard all laps and any in-progress lap."""
        self._laps.clear()
        self._started_at = None
