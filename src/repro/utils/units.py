"""Unit conventions and conversions used throughout the reproduction.

Conventions (fixed across the whole package, matching paper §VI-A):

* delay — **milliseconds**
* data volume — **megabytes (MB)**
* compute capacity — **MHz** (the paper expresses cloudlet capacity this way)
* bandwidth — **Mbps**
* distance — **metres**
* transmit power — **watts**
"""

from __future__ import annotations

from repro.utils.validation import require_non_negative

__all__ = [
    "MS_PER_SECOND",
    "GHZ_PER_MHZ",
    "BITS_PER_MEGABYTE",
    "seconds_to_ms",
    "ms_to_seconds",
    "mhz_to_ghz",
    "mbps_to_mb_per_ms",
]

MS_PER_SECOND = 1000.0
GHZ_PER_MHZ = 1.0 / 1000.0
BITS_PER_MEGABYTE = 8.0 * 1024.0 * 1024.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    require_non_negative("seconds", seconds)
    return seconds * MS_PER_SECOND


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    require_non_negative("ms", ms)
    return ms / MS_PER_SECOND


def mhz_to_ghz(mhz: float) -> float:
    """Convert MHz to GHz."""
    require_non_negative("mhz", mhz)
    return mhz * GHZ_PER_MHZ


def mbps_to_mb_per_ms(mbps: float) -> float:
    """Convert a link rate in Mbps to megabytes per millisecond.

    Useful for turning the paper's bandwidth capacities (500-1000 Mbps for a
    macro cell) into per-slot transfer volumes.
    """
    require_non_negative("mbps", mbps)
    megabytes_per_second = mbps / 8.0
    return megabytes_per_second / MS_PER_SECOND
