"""Generic name-indexed factory registries (the ``make_controller`` pattern).

PR 5 introduced ``repro.core.make_controller``: every controller the
experiments compare is built *by name*, the name doubles as the
checkpoint/spec identity, and construction recipes have exactly one
spelling.  Declarative campaigns (:mod:`repro.campaigns`) need the same
pattern for every axis of a scenario — topologies, workload/demand
models, predictors — so the pattern lives here once as a small generic
class and each domain package instantiates it:

* :data:`repro.core.registry` — controllers (``OL_GD``, ``OL_GAN``, ...)
* :mod:`repro.mec.registry` — topology factories (``gtitm``, ``as1755``)
* :mod:`repro.workload.registry` — demand models (``constant``, ``bursty``)
* :mod:`repro.prediction.registry` — §V predictors (``ewma``, ``ar``, ...)

Identity enforcement: a registry may carry an ``identity`` extractor
(e.g. ``lambda c: c.name``).  When present, :meth:`Registry.make`
verifies the built object answers to the registered name — the name is
what campaign specs and sweep manifests store, so a factory registered
under one name must never quietly build something that reports another.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """Name -> factory mapping with optional built-object identity checks.

    Parameters
    ----------
    kind:
        Human-readable noun for error messages (``"controller"``,
        ``"topology"``, ...).
    identity:
        Optional extractor returning the name a built object reports
        (``None`` when the object carries no identity).  When provided,
        :meth:`make` raises unless the extracted identity equals the
        registered name.
    """

    def __init__(
        self,
        kind: str,
        identity: Optional[Callable[[T], Optional[str]]] = None,
    ) -> None:
        if not kind:
            raise ValueError("registry kind must be non-empty")
        self._kind = kind
        self._identity = identity
        self._factories: Dict[str, Callable[..., T]] = {}

    @property
    def kind(self) -> str:
        """The noun this registry's error messages use."""
        return self._kind

    def register(self, name: str, factory: Callable[..., T]) -> None:
        """Register ``factory`` under ``name`` (must be new and non-empty)."""
        if not name:
            raise ValueError(f"{self._kind} name must be non-empty")
        if name in self._factories:
            raise ValueError(f"{self._kind} {name!r} is already registered")
        self._factories[name] = factory

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def factory(self, name: str) -> Callable[..., T]:
        """The raw factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self._kind} {name!r}; "
                f"registered: {', '.join(self.names())}"
            ) from None

    def make(self, name: str, *args: Any, **kwargs: Any) -> T:
        """Build the object registered under ``name``.

        Positional and keyword arguments are forwarded to the factory
        verbatim.  With an ``identity`` extractor configured, the built
        object must report exactly ``name``.
        """
        built = self.factory(name)(*args, **kwargs)
        if self._identity is not None:
            reported = self._identity(built)
            if reported != name:
                raise ValueError(
                    f"factory for {name!r} built a {self._kind} named "
                    f"{reported!r}; registry names must be identities"
                )
        return built
