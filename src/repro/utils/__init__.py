"""Shared utilities: deterministic RNG streams, validation, timing, units.

Every stochastic component of the reproduction draws from a named stream
forked from a single experiment seed (see :class:`RngRegistry`), which is
what makes the figures exactly reproducible run-to-run.
"""

from repro.utils.seeding import RngRegistry, fork_rng, spawn_seeds
from repro.utils.timer import Stopwatch
from repro.utils.units import (
    GHZ_PER_MHZ,
    MS_PER_SECOND,
    mbps_to_mb_per_ms,
    mhz_to_ghz,
    ms_to_seconds,
    seconds_to_ms,
)
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "RngRegistry",
    "fork_rng",
    "spawn_seeds",
    "Stopwatch",
    "GHZ_PER_MHZ",
    "MS_PER_SECOND",
    "mbps_to_mb_per_ms",
    "mhz_to_ghz",
    "ms_to_seconds",
    "seconds_to_ms",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
