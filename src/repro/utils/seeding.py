"""Deterministic, named random-number streams.

The simulator has many independent sources of randomness (topology
generation, per-base-station delay processes, burst arrivals, GAN weight
initialisation, bandit exploration).  If they all shared one generator, a
change in how often one component draws would silently reshuffle every other
component.  Instead, each component asks the :class:`RngRegistry` for a
stream by name; streams are forked from a single root seed via
``numpy.random.SeedSequence`` so they are mutually independent *and* stable
across runs and across unrelated code changes.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List

import numpy as np

__all__ = ["RngRegistry", "fork_rng", "spawn_seeds"]


def _stable_key_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per-process, so it cannot be used to
    derive reproducible seeds; a truncated SHA-256 digest is stable
    everywhere.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


# Domain-separation tag so a child registry's seed derivation can never
# collide with the entropy tuple of a same-named stream from get().
_CHILD_TAG = _stable_key_entropy("RngRegistry.child")


class RngRegistry:
    """A registry of independent named random streams under one root seed.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> topo_rng = rngs.get("topology")
    >>> delay_rng = rngs.get("delay")
    >>> topo_rng is rngs.get("topology")  # cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        require_seed(seed)
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always yields the same generator object within a
        registry, and the same *stream* across registries built with the
        same seed.
        """
        if name not in self._streams:
            entropy = _stable_key_entropy(name)
            seq = np.random.SeedSequence(entropy=(self._seed, entropy))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, replacing any cached one.

        Useful when a component must be reset mid-experiment (e.g. between
        repetitions) without disturbing other streams.
        """
        self._streams.pop(name, None)
        return self.get(name)

    def child(self, name: str) -> "RngRegistry":
        """Derive a sub-registry, e.g. one per repetition of an experiment.

        The child seed is drawn from a ``SeedSequence`` keyed on
        ``(seed, tag, name)``.  The previous XOR composition
        (``seed ^ hash(name)``) was commutative — ``child("a").child("b")``
        equalled ``child("b").child("a")`` — and collided whenever two
        ``(seed, name)`` pairs XORed to the same value, silently
        correlating "independent" repetitions.  SeedSequence hashing is
        neither commutative nor (practically) collision-prone.
        """
        seq = np.random.SeedSequence(
            entropy=(self._seed, _CHILD_TAG, _stable_key_entropy(name))
        )
        return RngRegistry(seed=int(seq.generate_state(1, dtype=np.uint64)[0]))

    def names(self) -> List[str]:
        """Names of all streams created so far (for debugging/tests)."""
        return sorted(self._streams)

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state: the root seed plus every materialised
        stream's bit-generator position (see :mod:`repro.state`)."""
        from repro.state.snapshot import rng_state

        return {
            "seed": self._seed,
            "streams": {
                name: rng_state(rng) for name, rng in self._streams.items()
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore stream positions in place (same root seed required).

        Streams are restored *onto* the registry's own generator objects
        (created on demand via :meth:`get`), so components already holding
        a stream reference resume from the checkpointed position.
        """
        from repro.state.snapshot import set_rng_state

        if int(state["seed"]) != self._seed:
            raise ValueError(
                f"checkpoint was taken under seed {state['seed']}, "
                f"this registry uses seed {self._seed}"
            )
        for name, stream_state in state["streams"].items():
            set_rng_state(self.get(name), stream_state)


def require_seed(seed: int) -> None:
    """Validate that ``seed`` is a non-negative integer."""
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise TypeError(f"seed must be an int, got {type(seed).__name__}")
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")


def fork_rng(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Fork ``n`` independent generators from ``rng``.

    The parent generator is advanced once; the children are mutually
    independent streams suitable for per-entity noise (one per base
    station, one per request, ...).
    """
    if n < 0:
        raise ValueError(f"cannot fork a negative number of streams: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seeds(seed: int, n: int) -> Iterator[int]:
    """Yield ``n`` reproducible derived seeds from a root seed."""
    require_seed(seed)
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    rng = np.random.default_rng(seed)
    for value in rng.integers(0, 2**63 - 1, size=n):
        yield int(value)
