"""Small argument-validation helpers used across the package.

These raise ``ValueError`` with a message that names the offending argument,
so misconfigured experiments fail at construction time instead of producing
silently wrong figures.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_open_probability",
    "require_in_range",
]


def _require_finite(name: str, value: Number) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def require_positive(name: str, value: Number) -> Number:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    _require_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: Number) -> Number:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    _require_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(name: str, value: Number) -> Number:
    """Return ``value`` if within [0, 1], else raise ``ValueError``."""
    _require_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def require_open_probability(name: str, value: Number) -> Number:
    """Return ``value`` if within the *open* interval (0, 1).

    Confidence levels must exclude the endpoints: ``t.ppf(1.0)`` is
    infinite, so ``confidence=1.0`` would produce infinite CIs.
    """
    _require_finite(name, value)
    if not 0.0 < value < 1.0:
        raise ValueError(
            f"{name} must be strictly between 0 and 1, got {value!r}"
        )
    return value


def require_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Return ``value`` if within [low, high], else raise ``ValueError``."""
    _require_finite(name, value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
