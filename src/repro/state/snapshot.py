"""Versioned ``.npz``+JSON snapshots of nested state dictionaries.

The checkpoint subsystem's wire format.  A *state dict* is a nested tree
of plain containers (``dict`` with string keys, ``list``/``tuple``),
numpy arrays and JSON scalars — what every ``state_dict()`` in the
library returns (:class:`repro.bandits.ArmStats`, the controllers, the
GAN stack, :class:`repro.utils.seeding.RngRegistry`, ...).  One snapshot
is one ``.npz`` file:

* every array in the tree is stored under its ``/``-joined path key
  (``"arms/sums"``, ``"model/generator/p3"``);
* the tree *structure* plus all non-array leaves travel in a single JSON
  document under the reserved ``__meta__`` entry, with arrays replaced by
  ``{"__ndarray__": <path key>}`` placeholders;
* the JSON header carries a format tag, a schema version and a caller
  ``kind`` so :func:`load_checkpoint` can reject foreign or stale files
  loudly instead of mis-restoring state.

Writes are atomic (temp file + ``os.replace``), so a crash mid-save
never leaves a truncated checkpoint behind — the previous snapshot
survives intact.

This module deliberately imports nothing from the simulation stack: the
engine, the controllers and the workload layer all import *it*.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "FORMAT_TAG",
    "CheckpointError",
    "flatten_state",
    "unflatten_state",
    "save_checkpoint",
    "load_checkpoint",
    "rng_state",
    "set_rng_state",
]

#: Bump when the on-disk layout changes incompatibly; ``load_checkpoint``
#: rejects files written under a different version.
SCHEMA_VERSION = 1

#: Identifies a file as one of ours before any schema comparison.
FORMAT_TAG = "repro-state"

_META_KEY = "__meta__"
_ARRAY_PLACEHOLDER = "__ndarray__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, foreign, stale or inconsistent."""


def _flatten(value: Any, path: str, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace arrays in ``value`` with placeholders, collecting them."""
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_PLACEHOLDER: path}
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, sub in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"state dict keys must be str, got {type(key).__name__} "
                    f"at {path!r}"
                )
            if "/" in key or key.startswith("__"):
                raise ValueError(
                    f"state dict key {key!r} at {path!r} may not contain "
                    "'/' or start with '__' (reserved for path addressing)"
                )
            out[key] = _flatten(sub, f"{path}/{key}" if path else key, arrays)
        return out
    if isinstance(value, (list, tuple)):
        return [
            _flatten(sub, f"{path}/{index}" if path else str(index), arrays)
            for index, sub in enumerate(value)
        ]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"state dict value at {path!r} has unsupported type "
        f"{type(value).__name__}; use arrays, containers or JSON scalars"
    )


def flatten_state(state: Any) -> Tuple[Dict[str, np.ndarray], Any]:
    """Split a state tree into ``(arrays by path key, JSON structure)``."""
    arrays: Dict[str, np.ndarray] = {}
    structure = _flatten(state, "", arrays)
    return arrays, structure


def _unflatten(structure: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(structure, dict):
        if set(structure) == {_ARRAY_PLACEHOLDER}:
            key = structure[_ARRAY_PLACEHOLDER]
            if key not in arrays:
                raise CheckpointError(
                    f"checkpoint references missing array {key!r}"
                )
            return arrays[key]
        return {key: _unflatten(sub, arrays) for key, sub in structure.items()}
    if isinstance(structure, list):
        return [_unflatten(sub, arrays) for sub in structure]
    return structure


def unflatten_state(structure: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Rebuild the state tree from :func:`flatten_state`'s two halves."""
    return _unflatten(structure, arrays)


def save_checkpoint(
    path: Union[str, Path],
    state: Any,
    *,
    kind: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``state`` to ``path`` atomically; returns the final path.

    ``kind`` names what the snapshot holds (``"simulation"``,
    ``"work-result"``, ...) and is re-checked by :func:`load_checkpoint`.
    ``meta`` is an optional JSON-able side channel (horizon, slot, seed)
    stored next to — not inside — the state tree.
    """
    path = Path(path)
    arrays, structure = flatten_state(state)
    header = {
        "format": FORMAT_TAG,
        "schema": SCHEMA_VERSION,
        "kind": str(kind),
        "state": structure,
        "meta": dict(meta) if meta is not None else {},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}.npz"
    try:
        np.savez(tmp, **{_META_KEY: np.array(json.dumps(header))}, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_checkpoint(
    path: Union[str, Path], *, kind: Optional[str] = None
) -> Tuple[Any, Dict[str, Any]]:
    """Load a snapshot written by :func:`save_checkpoint`.

    Returns ``(state, meta)``.  Raises :class:`CheckpointError` when the
    file is missing, was not written by this module, carries a different
    schema version, or holds a different ``kind`` than requested.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise CheckpointError(
                f"{path} is not a repro-state checkpoint (no {_META_KEY})"
            )
        try:
            header = json.loads(str(archive[_META_KEY][()]))
        except (json.JSONDecodeError, TypeError) as error:
            raise CheckpointError(f"{path} has a corrupt header: {error}") from error
        if header.get("format") != FORMAT_TAG:
            raise CheckpointError(
                f"{path} has format {header.get('format')!r}, "
                f"expected {FORMAT_TAG!r}"
            )
        if header.get("schema") != SCHEMA_VERSION:
            raise CheckpointError(
                f"{path} was written with schema {header.get('schema')!r}; "
                f"this build reads schema {SCHEMA_VERSION}"
            )
        if kind is not None and header.get("kind") != kind:
            raise CheckpointError(
                f"{path} holds a {header.get('kind')!r} snapshot, "
                f"expected {kind!r}"
            )
        arrays = {
            name: archive[name] for name in archive.files if name != _META_KEY
        }
    state = unflatten_state(header.get("state"), arrays)
    meta = header.get("meta") or {}
    return state, dict(meta)


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-able snapshot of a generator's bit-generator state."""
    return dict(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a generator to a :func:`rng_state` snapshot, in place.

    Assigning ``bit_generator.state`` mutates the existing generator, so
    every object already holding a reference to ``rng`` resumes from the
    restored stream position — no generator is constructed.
    """
    current = rng.bit_generator.state.get("bit_generator")
    stored = state.get("bit_generator")
    if stored != current:
        raise CheckpointError(
            f"cannot restore {stored!r} state into a {current!r} generator"
        )
    rng.bit_generator.state = state
