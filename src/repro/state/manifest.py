"""Sweep manifests: resumable ``(repetition, controller)`` grids.

A repetition sweep (``repro.sim.run_repetitions`` /
``ParallelRunner.run``) with a checkpoint directory persists every
completed work item as its own ``work-result`` snapshot next to a small
``manifest.json`` that pins the sweep's identity — seed, repetitions,
horizon, demand setting and (once known) the controller names, which
double as the subsystem's controller identifiers.  Restarting the sweep
with ``resume=True``:

1. reads the manifest and refuses to mix results from a *different*
   sweep (any identity mismatch raises :class:`CheckpointError`);
2. loads every persisted item back as a completed work result;
3. executes only the missing items.

Because every work item is deterministic given ``(seed, repetition,
controller)``, the resumed study's summary statistics are identical to
an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.state.snapshot import CheckpointError

__all__ = [
    "SweepManifest",
    "WORK_RESULT_KIND",
    "result_path",
    "completed_items",
    "finalise_controllers",
]

#: ``kind`` tag of per-item snapshots (see :func:`repro.state.save_checkpoint`).
WORK_RESULT_KIND = "work-result"

_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-sweep"
_MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class SweepManifest:
    """Identity of one repetition sweep (what makes results reusable)."""

    seed: int
    repetitions: int
    horizon: int
    demands_known: bool
    controllers: Optional[Tuple[str, ...]] = None

    def write(self, directory: Union[str, Path]) -> Path:
        """Write ``manifest.json`` into ``directory`` (atomic)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / _MANIFEST_NAME
        payload = {
            "format": _MANIFEST_FORMAT,
            "schema": _MANIFEST_SCHEMA,
            **asdict(self),
        }
        if self.controllers is not None:
            payload["controllers"] = list(self.controllers)
        tmp = directory / f".{_MANIFEST_NAME}.tmp-{os.getpid()}"
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, directory: Union[str, Path]) -> "SweepManifest":
        """Read the manifest of ``directory``; raises when absent/foreign."""
        path = Path(directory) / _MANIFEST_NAME
        if not path.exists():
            raise CheckpointError(f"no sweep manifest at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CheckpointError(f"{path} is corrupt: {error}") from error
        if payload.get("format") != _MANIFEST_FORMAT:
            raise CheckpointError(
                f"{path} has format {payload.get('format')!r}, "
                f"expected {_MANIFEST_FORMAT!r}"
            )
        if payload.get("schema") != _MANIFEST_SCHEMA:
            raise CheckpointError(
                f"{path} was written with schema {payload.get('schema')!r}; "
                f"this build reads schema {_MANIFEST_SCHEMA}"
            )
        controllers = payload.get("controllers")
        return cls(
            seed=int(payload["seed"]),
            repetitions=int(payload["repetitions"]),
            horizon=int(payload["horizon"]),
            demands_known=bool(payload["demands_known"]),
            controllers=tuple(controllers) if controllers is not None else None,
        )

    @staticmethod
    def exists(directory: Union[str, Path]) -> bool:
        """True when ``directory`` already carries a manifest."""
        return (Path(directory) / _MANIFEST_NAME).exists()

    def require_compatible(self, other: "SweepManifest") -> None:
        """Raise :class:`CheckpointError` unless ``other`` is the same sweep.

        ``controllers`` participates only when both sides know it — a
        manifest written before any item completed may carry ``None``.
        """
        mismatches = []
        for field in ("seed", "repetitions", "horizon", "demands_known"):
            mine, theirs = getattr(self, field), getattr(other, field)
            if mine != theirs:
                mismatches.append(f"{field}: checkpoint {mine!r} vs run {theirs!r}")
        if (
            self.controllers is not None
            and other.controllers is not None
            and self.controllers != other.controllers
        ):
            mismatches.append(
                f"controllers: checkpoint {list(self.controllers)} "
                f"vs run {list(other.controllers)}"
            )
        if mismatches:
            raise CheckpointError(
                "checkpoint directory belongs to a different sweep — "
                + "; ".join(mismatches)
            )


def result_path(
    directory: Union[str, Path], repetition: int, controller_index: int
) -> Path:
    """Snapshot file of work item ``(repetition, controller_index)``."""
    return Path(directory) / f"rep{repetition:05d}-ctrl{controller_index:03d}.npz"


def finalise_controllers(
    directory: Union[str, Path],
    manifest: SweepManifest,
    names: Mapping[int, str],
) -> None:
    """Rewrite ``directory``'s manifest with controller names once known.

    Names double as the checkpoint subsystem's controller identifiers
    (a controller built by ``repro.core.make_controller`` answers to its
    registry name), so a later resume can refuse a directory produced by
    a different controller line-up.  ``names`` maps controller index to
    name; the rewrite only happens when the mapping covers a complete
    ``0..N-1`` range — partial knowledge (e.g. every item of one
    controller failed) keeps the name-less manifest, which stays
    resumable.
    """
    if names and sorted(names) == list(range(len(names))):
        SweepManifest(
            seed=manifest.seed,
            repetitions=manifest.repetitions,
            horizon=manifest.horizon,
            demands_known=manifest.demands_known,
            controllers=tuple(names[i] for i in range(len(names))),
        ).write(directory)


def completed_items(
    directory: Union[str, Path],
) -> Dict[Tuple[int, int], Path]:
    """Map of persisted ``(repetition, controller_index)`` -> snapshot path."""
    directory = Path(directory)
    found: Dict[Tuple[int, int], Path] = {}
    if not directory.exists():
        return found
    for path in sorted(directory.glob("rep*-ctrl*.npz")):
        stem = path.stem  # rep00001-ctrl002
        try:
            rep_part, ctrl_part = stem.split("-ctrl")
            key = (int(rep_part[3:]), int(ctrl_part))
        except ValueError:
            continue
        found[key] = path
    return found
