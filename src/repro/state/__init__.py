"""Checkpoint/resume state subsystem.

Three layers, lowest first:

* :mod:`repro.state.snapshot` — the wire format: versioned ``.npz``+JSON
  snapshots of nested ``state_dict()`` trees, plus numpy bit-generator
  state helpers.  Every stateful object in the library
  (controllers, bandit statistics, the GAN predictor, demand models,
  :class:`repro.utils.seeding.RngRegistry`) implements
  ``state_dict()`` / ``load_state_dict()`` against this format.
* :mod:`repro.state.checkpoint` — per-run policy:
  :class:`CheckpointConfig` tells ``run_simulation`` where and how often
  to snapshot, and whether to resume.
* :mod:`repro.state.manifest` — sweep-level resume: a ``manifest.json``
  pinning a repetition sweep's identity next to one ``work-result``
  snapshot per completed ``(repetition, controller)`` item.

The package is import-light by design (numpy + stdlib only), so the
core, workload, GAN and simulation layers can all depend on it without
cycles.
"""

from repro.state.checkpoint import (
    SERVE_KIND,
    SIMULATION_KIND,
    CheckpointConfig,
    snapshot_slug,
)
from repro.state.manifest import (
    WORK_RESULT_KIND,
    SweepManifest,
    completed_items,
    finalise_controllers,
    result_path,
)
from repro.state.snapshot import (
    FORMAT_TAG,
    SCHEMA_VERSION,
    CheckpointError,
    flatten_state,
    load_checkpoint,
    rng_state,
    save_checkpoint,
    set_rng_state,
    unflatten_state,
)

__all__ = [
    "SCHEMA_VERSION",
    "FORMAT_TAG",
    "CheckpointError",
    "CheckpointConfig",
    "SIMULATION_KIND",
    "SERVE_KIND",
    "snapshot_slug",
    "SweepManifest",
    "WORK_RESULT_KIND",
    "completed_items",
    "finalise_controllers",
    "result_path",
    "flatten_state",
    "unflatten_state",
    "save_checkpoint",
    "load_checkpoint",
    "rng_state",
    "set_rng_state",
]
