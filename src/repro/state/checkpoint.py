"""Checkpoint policy for a single simulation run.

:class:`CheckpointConfig` is what callers hand to
``repro.sim.run_simulation(..., checkpoint=...)``: a directory, a save
cadence and a resume switch.  The engine owns *what* goes into the
snapshot (controller state, demand-model identity, the per-slot record
series); this module owns *where* it lives and how often it is written,
and stays import-free of the simulation stack so every layer can depend
on it.

One simulation keeps exactly one snapshot file, named after the
controller (controller names double as checkpoint identifiers across the
subsystem — see ``repro.core.make_controller``), overwritten in place on
every save.  Writes go through :func:`repro.state.save_checkpoint` and
are atomic, so an interrupt mid-save leaves the previous snapshot valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

__all__ = ["CheckpointConfig", "SIMULATION_KIND", "SERVE_KIND", "snapshot_slug"]

#: ``kind`` tag of single-run snapshots (see :func:`repro.state.save_checkpoint`).
SIMULATION_KIND = "simulation"

#: ``kind`` tag of decision-server snapshots (:mod:`repro.serve`): same wire
#: format as simulation snapshots, but carrying the server's ingest state
#: (pending offers, rejection accounting) next to the controller state, so
#: the two kinds can never resume each other by accident.
SERVE_KIND = "serve"


def snapshot_slug(name: str) -> str:
    """A controller name as a safe file-name fragment.

    Shared by the simulation and serving checkpoint paths so a controller
    name maps to the same fragment everywhere.
    """
    cleaned = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
    return cleaned or "controller"


_slug = snapshot_slug


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a simulation snapshots itself.

    Parameters
    ----------
    directory:
        Snapshot directory (created on first save).
    every_n_slots:
        A snapshot is written after every ``every_n_slots`` completed
        slots.  The final partial stretch of the horizon is *not*
        implicitly saved — a completed run returns its result and needs
        no checkpoint.
    resume:
        When True and a snapshot exists, the run restores it and
        continues from the next slot; when no snapshot exists yet the
        run starts from slot 0 (so ``resume=True`` is always safe to
        pass).  When False any existing snapshot is ignored and will be
        overwritten by the next save.
    """

    directory: Union[str, Path]
    every_n_slots: int = 10
    resume: bool = False

    def __post_init__(self) -> None:
        if (
            not isinstance(self.every_n_slots, int)
            or isinstance(self.every_n_slots, bool)
            or self.every_n_slots < 1
        ):
            raise ValueError(
                f"every_n_slots must be a positive int, got {self.every_n_slots!r}"
            )

    def path_for(self, controller_name: str) -> Path:
        """The snapshot file of ``controller_name``'s run."""
        return Path(self.directory) / f"sim-{_slug(controller_name)}.npz"

    def due(self, completed_slots: int) -> bool:
        """True when a snapshot should be written after this many slots."""
        return completed_slots > 0 and completed_slots % self.every_n_slots == 0
