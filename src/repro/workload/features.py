"""Hidden user features and the one-hot location coding `c^t` (§V-B).

The Info-RNN-GAN conditions on a latent code `C` built from user hidden
features — "we preprocess the location of the data with one-hot encoding
and then treat it as the value of C".  This module provides that encoding
plus a small container for the other hidden features the paper lists
(group tag, mobility pattern, registered base station).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.mec.requests import Request
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["one_hot", "encode_request_locations", "HiddenFeatures"]


def one_hot(index: int, n: int) -> np.ndarray:
    """Length-``n`` one-hot vector with a 1 at ``index``."""
    require_positive("n", n)
    require_non_negative("index", index)
    if index >= n:
        raise ValueError(f"index {index} out of range for one-hot of size {n}")
    vec = np.zeros(n)
    vec[index] = 1.0
    return vec


def encode_request_locations(requests: Sequence[Request], n_hotspots: int) -> np.ndarray:
    """One-hot location codes for a request set: shape ``(|R|, n_hotspots+1)``.

    Column ``n_hotspots`` (the last one) encodes "no hotspot" for users not
    attached to any cluster, so the coding is total over the request set.
    This matrix is the latent code `c` fed to the GAN generator.
    """
    require_positive("n_hotspots", n_hotspots)
    if not requests:
        raise ValueError("need at least one request to encode")
    codes = np.zeros((len(requests), n_hotspots + 1))
    for row, request in enumerate(requests):
        if request.hotspot_index is None:
            codes[row, n_hotspots] = 1.0
        else:
            if request.hotspot_index >= n_hotspots:
                raise ValueError(
                    f"request {request.index} references hotspot "
                    f"{request.hotspot_index} but only {n_hotspots} exist"
                )
            codes[row, request.hotspot_index] = 1.0
    return codes


@dataclass(frozen=True)
class HiddenFeatures:
    """The hidden features of one mobile user (§I: "locations, user group
    tags, and mobility patterns").

    These are what the paper calls *small samples of hidden features* — the
    conditioning information available to the demand predictor, never to
    the caching controller directly.
    """

    user_id: int
    hotspot_index: Optional[int]
    group_tag: str
    registered_station: Optional[int] = None
    mobility: str = "static"

    def as_code(self, n_hotspots: int, group_tags: Sequence[str]) -> np.ndarray:
        """Concatenate one-hot location and one-hot group tag codes.

        The location part matches :func:`encode_request_locations`; the
        group part appends ``len(group_tags)`` extra dimensions.  Unknown
        group tags raise — the vocabulary must be fixed before encoding.
        """
        require_positive("n_hotspots", n_hotspots)
        location = np.zeros(n_hotspots + 1)
        if self.hotspot_index is None:
            location[n_hotspots] = 1.0
        else:
            if self.hotspot_index >= n_hotspots:
                raise ValueError(
                    f"hotspot_index {self.hotspot_index} out of range "
                    f"({n_hotspots} hotspots)"
                )
            location[self.hotspot_index] = 1.0
        tags = list(group_tags)
        if self.group_tag not in tags:
            raise ValueError(
                f"group tag {self.group_tag!r} not in vocabulary {tags}"
            )
        group = one_hot(tags.index(self.group_tag), len(tags))
        return np.concatenate([location, group])
