"""Bursty user-demand workload: MMPP bursts, flash crowds, synthetic traces.

Implements the demand side of the paper: per-request data volumes
`rho_l(t) = rho_l^bsc + rho_l^bst(t)` (Eq. 1) whose bursty component is
driven by location-correlated burst processes ("a sudden event can easily
cause a lot of user demand on a femtocell network"), plus a synthetic
stand-in for the NYC Wi-Fi hotspot dataset the paper samples user hidden
features from (see DESIGN.md §2).
"""

from repro.workload.bursty import FlashCrowdSchedule, MmppBurstProcess
from repro.workload.demand import BurstyDemandModel, ConstantDemandModel, DemandModel
from repro.workload.features import (
    HiddenFeatures,
    encode_request_locations,
    one_hot,
)
from repro.workload.mobility import HotspotHoppingMobility, MobilePriorityController
from repro.workload.registry import (
    WORKLOADS,
    WorkloadFactory,
    make_workload,
    register_workload,
    workload_names,
)
from repro.workload.stats import (
    BurstinessReport,
    autocorrelation,
    burstiness_score,
    describe_burstiness,
    index_of_dispersion,
    peak_to_mean,
)
from repro.workload.trace import (
    Hotspot,
    UserRecord,
    WifiTrace,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

__all__ = [
    "FlashCrowdSchedule",
    "MmppBurstProcess",
    "BurstyDemandModel",
    "ConstantDemandModel",
    "DemandModel",
    "HiddenFeatures",
    "encode_request_locations",
    "one_hot",
    "HotspotHoppingMobility",
    "MobilePriorityController",
    "WORKLOADS",
    "WorkloadFactory",
    "make_workload",
    "register_workload",
    "workload_names",
    "BurstinessReport",
    "autocorrelation",
    "burstiness_score",
    "describe_burstiness",
    "index_of_dispersion",
    "peak_to_mean",
    "Hotspot",
    "UserRecord",
    "WifiTrace",
    "requests_from_trace",
    "synthesize_nyc_wifi_trace",
]
