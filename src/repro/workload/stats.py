"""Burstiness statistics: quantifying "bursty" (workload validation).

The paper's premise is that demand is *bursty* — but burstiness is a
measurable property, not a vibe.  These estimators (the standard traffic-
engineering set) let tests and experiments assert that a generated
workload actually exhibits the claimed behaviour:

* **peak-to-mean ratio** — how much the worst slot exceeds the average;
* **index of dispersion for counts (IDC)** — variance/mean; 1 for Poisson,
  >> 1 for bursty processes;
* **autocorrelation** — burst *episodes* make neighbouring slots
  correlated (an i.i.d. heavy tail alone would not);
* **burstiness score** of Goh & Barabási: `(sigma - mu)/(sigma + mu)`,
  in (-1, 1), 0 for Poisson-like, -> 1 for extremely bursty signals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "peak_to_mean",
    "index_of_dispersion",
    "autocorrelation",
    "burstiness_score",
    "BurstinessReport",
    "describe_burstiness",
]


def _as_series(values) -> np.ndarray:
    series = np.asarray(values, dtype=float).reshape(-1)
    if series.size < 2:
        raise ValueError("need at least 2 samples to measure burstiness")
    if np.any(series < 0):
        raise ValueError("demand series must be non-negative")
    return series


def peak_to_mean(values) -> float:
    """`max / mean`; >= 1, equality iff constant."""
    series = _as_series(values)
    mean = series.mean()
    if mean == 0.0:
        raise ValueError("cannot compute peak-to-mean of an all-zero series")
    return float(series.max() / mean)


def index_of_dispersion(values) -> float:
    """`variance / mean` (IDC); 1 for Poisson, >> 1 for bursty."""
    series = _as_series(values)
    mean = series.mean()
    if mean == 0.0:
        raise ValueError("cannot compute dispersion of an all-zero series")
    return float(series.var() / mean)


def autocorrelation(values, lag: int = 1) -> float:
    """Pearson autocorrelation at ``lag`` (0 for white noise, >0 for episodes)."""
    series = _as_series(values)
    if not 1 <= lag < series.size:
        raise ValueError(f"lag must be in [1, {series.size - 1}], got {lag}")
    a = series[:-lag]
    b = series[lag:]
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def burstiness_score(values) -> float:
    """Goh-Barabási `B = (sigma - mu) / (sigma + mu)` in (-1, 1)."""
    series = _as_series(values)
    sigma, mu = series.std(), series.mean()
    if sigma + mu == 0.0:
        raise ValueError("cannot score an all-zero series")
    return float((sigma - mu) / (sigma + mu))


@dataclass(frozen=True)
class BurstinessReport:
    """All four statistics of one demand series."""

    peak_to_mean: float
    index_of_dispersion: float
    autocorrelation_lag1: float
    burstiness_score: float

    def is_bursty(
        self,
        min_peak_to_mean: float = 2.0,
        min_dispersion: float = 1.0,
    ) -> bool:
        """A pragmatic composite: pronounced peaks and over-dispersion."""
        return (
            self.peak_to_mean >= min_peak_to_mean
            and self.index_of_dispersion >= min_dispersion
        )


def describe_burstiness(values) -> BurstinessReport:
    """Compute the full report for a demand series."""
    return BurstinessReport(
        peak_to_mean=peak_to_mean(values),
        index_of_dispersion=index_of_dispersion(values),
        autocorrelation_lag1=autocorrelation(values, lag=1),
        burstiness_score=burstiness_score(values),
    )
