"""Synthetic stand-in for the NYC Wi-Fi hotspot dataset (paper ref. [26]).

The paper extracts "a sample of user information from the dataset of NYC
Wi-Fi hotspot locations", using its location / time / service-status
features as the GAN's small-sample hidden features.  That dataset is not
redistributable here, so :func:`synthesize_nyc_wifi_trace` generates a
trace with the same schema and the same statistical role:

* hotspots clustered by borough (five clusters on the deployment plane),
* per-hotspot provider and free/limited service status,
* user records attached to hotspots, with group tags and session windows.

The CSV round-trip (:meth:`WifiTrace.to_csv` / :meth:`WifiTrace.from_csv`)
lets users swap in the *real* NYC export, which has the same columns.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.mec.geometry import Point, random_point_in_disk
from repro.mec.requests import Request
from repro.mec.services import ServiceCatalog
from repro.utils.validation import require_positive

__all__ = [
    "Hotspot",
    "UserRecord",
    "WifiTrace",
    "synthesize_nyc_wifi_trace",
    "requests_from_trace",
]

BOROUGHS = ["manhattan", "brooklyn", "queens", "bronx", "staten-island"]
PROVIDERS = ["LinkNYC", "SpotOn", "Transit", "Harlem", "AlticeUSA"]
GROUP_TAGS = ["tourist", "commuter", "resident", "student"]
SERVICE_STATUSES = ["free", "limited"]

# Borough cluster centres on a 1000 m x 1000 m field, mirroring the
# relative geography (Manhattan dense-centre, Staten Island far corner).
_BOROUGH_CENTERS = {
    "manhattan": Point(450.0, 550.0),
    "brooklyn": Point(600.0, 350.0),
    "queens": Point(750.0, 550.0),
    "bronx": Point(500.0, 800.0),
    "staten-island": Point(150.0, 150.0),
}
_BOROUGH_SPREAD_M = 140.0
# Borough weights approximating the real dataset's hotspot density.
_BOROUGH_WEIGHTS = [0.45, 0.22, 0.18, 0.10, 0.05]


@dataclass(frozen=True)
class Hotspot:
    """One Wi-Fi hotspot row: where users cluster and burst together."""

    index: int
    borough: str
    x: float
    y: float
    provider: str
    service_status: str

    @property
    def location(self) -> Point:
        """Hotspot position on the deployment plane."""
        return Point(self.x, self.y)


@dataclass(frozen=True)
class UserRecord:
    """One user row of the trace."""

    user_id: int
    hotspot_index: int
    group_tag: str
    session_start_slot: int
    session_length_slots: int
    base_demand_mb: float


class WifiTrace:
    """A hotspot dataset plus the users sampled from it."""

    def __init__(self, hotspots: Sequence[Hotspot], users: Sequence[UserRecord]):
        if not hotspots:
            raise ValueError("a trace needs at least one hotspot")
        for position, hotspot in enumerate(hotspots):
            if hotspot.index != position:
                raise ValueError("hotspot indices must be 0..n-1 in order")
        hotspot_range = range(len(hotspots))
        for user in users:
            if user.hotspot_index not in hotspot_range:
                raise ValueError(
                    f"user {user.user_id} references hotspot {user.hotspot_index} "
                    f"but only {len(hotspots)} hotspots exist"
                )
        self.hotspots: List[Hotspot] = list(hotspots)
        self.users: List[UserRecord] = list(users)

    @property
    def n_hotspots(self) -> int:
        return len(self.hotspots)

    @property
    def n_users(self) -> int:
        return len(self.users)

    def users_at(self, hotspot_index: int) -> List[UserRecord]:
        """All users attached to one hotspot."""
        return [u for u in self.users if u.hotspot_index == hotspot_index]

    def borough_histogram(self) -> Dict[str, int]:
        """Hotspot counts per borough."""
        histogram: Dict[str, int] = {}
        for hotspot in self.hotspots:
            histogram[hotspot.borough] = histogram.get(hotspot.borough, 0) + 1
        return histogram

    # ------------------------------------------------------------------ #
    # CSV round trip (same columns as the public NYC export subset)
    # ------------------------------------------------------------------ #

    _HOTSPOT_FIELDS = ["index", "borough", "x", "y", "provider", "service_status"]
    _USER_FIELDS = [
        "user_id",
        "hotspot_index",
        "group_tag",
        "session_start_slot",
        "session_length_slots",
        "base_demand_mb",
    ]

    def to_csv(self, hotspot_path: Union[str, Path], user_path: Union[str, Path]) -> None:
        """Write the trace as two CSV files (hotspots, users)."""
        with open(hotspot_path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self._HOTSPOT_FIELDS)
            writer.writeheader()
            for h in self.hotspots:
                writer.writerow(
                    {
                        "index": h.index,
                        "borough": h.borough,
                        "x": h.x,
                        "y": h.y,
                        "provider": h.provider,
                        "service_status": h.service_status,
                    }
                )
        with open(user_path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self._USER_FIELDS)
            writer.writeheader()
            for u in self.users:
                writer.writerow(
                    {
                        "user_id": u.user_id,
                        "hotspot_index": u.hotspot_index,
                        "group_tag": u.group_tag,
                        "session_start_slot": u.session_start_slot,
                        "session_length_slots": u.session_length_slots,
                        "base_demand_mb": u.base_demand_mb,
                    }
                )

    @classmethod
    def from_csv(
        cls, hotspot_path: Union[str, Path], user_path: Union[str, Path]
    ) -> "WifiTrace":
        """Load a trace previously written by :meth:`to_csv`."""
        hotspots: List[Hotspot] = []
        with open(hotspot_path, newline="") as handle:
            for row in csv.DictReader(handle):
                hotspots.append(
                    Hotspot(
                        index=int(row["index"]),
                        borough=row["borough"],
                        x=float(row["x"]),
                        y=float(row["y"]),
                        provider=row["provider"],
                        service_status=row["service_status"],
                    )
                )
        users: List[UserRecord] = []
        with open(user_path, newline="") as handle:
            for row in csv.DictReader(handle):
                users.append(
                    UserRecord(
                        user_id=int(row["user_id"]),
                        hotspot_index=int(row["hotspot_index"]),
                        group_tag=row["group_tag"],
                        session_start_slot=int(row["session_start_slot"]),
                        session_length_slots=int(row["session_length_slots"]),
                        base_demand_mb=float(row["base_demand_mb"]),
                    )
                )
        return cls(hotspots, users)


def synthesize_nyc_wifi_trace(
    n_hotspots: int,
    n_users: int,
    rng: np.random.Generator,
    horizon_slots: int = 100,
    base_demand_range_mb: Sequence[float] = (0.5, 2.0),
) -> WifiTrace:
    """Generate a synthetic NYC-Wi-Fi-like trace.

    Hotspots are drawn borough-by-borough with the real dataset's rough
    density weights; users attach to hotspots with probability proportional
    to a Zipf-ish popularity (a few hotspots attract most users — that is
    what makes their bursts matter).
    """
    require_positive("n_hotspots", n_hotspots)
    require_positive("n_users", n_users)
    require_positive("horizon_slots", horizon_slots)
    lo, hi = base_demand_range_mb
    require_positive("base demand lower bound", lo)
    if lo > hi:
        raise ValueError("base_demand_range_mb must be (low, high) with low <= high")

    hotspots: List[Hotspot] = []
    for index in range(n_hotspots):
        borough = str(rng.choice(BOROUGHS, p=_BOROUGH_WEIGHTS))
        center = _BOROUGH_CENTERS[borough]
        position = random_point_in_disk(center, _BOROUGH_SPREAD_M, rng)
        hotspots.append(
            Hotspot(
                index=index,
                borough=borough,
                x=position.x,
                y=position.y,
                provider=str(rng.choice(PROVIDERS)),
                service_status=str(rng.choice(SERVICE_STATUSES, p=[0.8, 0.2])),
            )
        )

    # Zipf-like hotspot popularity: weight ~ 1 / rank.
    ranks = np.arange(1, n_hotspots + 1, dtype=float)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    order = rng.permutation(n_hotspots)  # which hotspot gets which rank

    users: List[UserRecord] = []
    for user_id in range(n_users):
        rank = int(rng.choice(n_hotspots, p=popularity))
        hotspot_index = int(order[rank])
        start = int(rng.integers(0, max(1, horizon_slots // 2)))
        length = int(rng.integers(horizon_slots // 4, horizon_slots + 1))
        users.append(
            UserRecord(
                user_id=user_id,
                hotspot_index=hotspot_index,
                group_tag=str(rng.choice(GROUP_TAGS)),
                session_start_slot=start,
                session_length_slots=length,
                base_demand_mb=float(rng.uniform(lo, hi)),
            )
        )
    return WifiTrace(hotspots, users)


def requests_from_trace(
    trace: WifiTrace,
    services: ServiceCatalog,
    rng: np.random.Generator,
    user_spread_m: float = 20.0,
) -> List[Request]:
    """Build the request set `R` from a trace: one request per user.

    The required service is chosen per group tag (all tourists stream VR,
    commuters transcode, ...) with random spill-over, and the user is
    dropped near its hotspot so coverage counts vary between users.
    """
    if user_spread_m < 0:
        raise ValueError("user_spread_m must be >= 0")
    n_services = len(services)
    tag_to_service = {
        tag: index % n_services for index, tag in enumerate(GROUP_TAGS)
    }
    requests: List[Request] = []
    for position, user in enumerate(trace.users):
        hotspot = trace.hotspots[user.hotspot_index]
        location = random_point_in_disk(hotspot.location, user_spread_m, rng)
        if rng.uniform() < 0.8:
            service_index = tag_to_service[user.group_tag]
        else:
            service_index = int(rng.integers(n_services))
        requests.append(
            Request(
                index=position,
                service_index=service_index,
                basic_demand_mb=user.base_demand_mb,
                location=location,
                hotspot_index=user.hotspot_index,
                group_tag=user.group_tag,
            )
        )
    return requests
