"""Demand models producing `rho_l(t)` for every request and slot (Eq. 1).

Two concrete models:

* :class:`ConstantDemandModel` — the "given demands" setting of §IV
  (Figs. 3-5): every request's demand is its basic demand in every slot.
* :class:`BurstyDemandModel` — the full setting of §V (Figs. 6-7): basic
  demand plus hotspot-correlated MMPP bursts, per-user jitter, and optional
  scheduled flash crowds.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mec.requests import Request
from repro.utils.validation import require_non_negative, require_probability
from repro.workload.bursty import FlashCrowdSchedule, MmppBurstProcess

__all__ = ["DemandModel", "ConstantDemandModel", "BurstyDemandModel"]


class DemandModel(abc.ABC):
    """Per-slot data volumes for a fixed request set `R`."""

    def __init__(self, requests: Sequence[Request]):
        if not requests:
            raise ValueError("a demand model needs at least one request")
        self._requests: List[Request] = list(requests)
        self._basic = np.array([r.basic_demand_mb for r in requests], dtype=float)

    @property
    def requests(self) -> List[Request]:
        """The request set `R` this model generates demand for."""
        return list(self._requests)

    @property
    def n_requests(self) -> int:
        """|R|."""
        return len(self._requests)

    @property
    def basic_demands(self) -> np.ndarray:
        """Vector of `rho_l^bsc` (a priori, §III-B)."""
        return self._basic.copy()

    @abc.abstractmethod
    def bursty_at(self, slot: int) -> np.ndarray:
        """`rho_l^bst(t)` per request; must be deterministic per slot."""

    def demand_at(self, slot: int) -> np.ndarray:
        """`rho_l(t) = rho_l^bsc + rho_l^bst(t)` per request (Eq. 1)."""
        return self._basic + self.bursty_at(slot)

    def matrix(self, horizon: int) -> np.ndarray:
        """Demand matrix of shape ``(horizon, n_requests)`` for slots 0..T-1."""
        require_non_negative("horizon", horizon)
        return np.stack([self.demand_at(t) for t in range(horizon)]) if horizon else (
            np.zeros((0, self.n_requests))
        )

    def state_dict(self) -> Dict[str, Any]:
        """Identity of this model's realisation (see :mod:`repro.state`).

        Demand models are slot-keyed — ``demand_at(t)`` is a pure function
        of construction-time seeds — so checkpoints carry only identity
        fields; :meth:`load_state_dict` *verifies* a resumed run rebuilt
        the same demand trajectory rather than mutating anything.
        """
        return {
            "model": type(self).__name__,
            "n_requests": self.n_requests,
            "basic": self._basic.copy(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Verify this model realises the checkpointed demand trajectory."""
        if state.get("model") != type(self).__name__:
            raise ValueError(
                f"checkpoint was taken under demand model {state.get('model')!r}, "
                f"this run uses {type(self).__name__}"
            )
        if int(state["n_requests"]) != self.n_requests:
            raise ValueError(
                f"checkpoint covers {state['n_requests']} requests, "
                f"this model covers {self.n_requests}"
            )
        if not np.array_equal(np.asarray(state["basic"], dtype=float), self._basic):
            raise ValueError("checkpointed basic demands differ from this model's")


class ConstantDemandModel(DemandModel):
    """Given demands: `rho_l(t) = rho_l^bsc` for every slot (§IV setting)."""

    def bursty_at(self, slot: int) -> np.ndarray:
        require_non_negative("slot", slot)
        return np.zeros(self.n_requests)


class BurstyDemandModel(DemandModel):
    """Hotspot-correlated bursty demand (§V setting).

    Every hotspot runs its own :class:`MmppBurstProcess`; all requests
    attached to a bursting hotspot draw the hotspot's shared slot amplitude
    scaled by a per-user jitter factor in ``[1-jitter, 1+jitter]``.
    Requests with no hotspot (``hotspot_index is None``) burst
    independently with the same process parameters.

    Parameters
    ----------
    requests:
        The request set; ``hotspot_index`` attributes define correlation
        groups.
    rng:
        Source for process seeds and jitter.
    flash_crowds:
        Optional deterministic event schedule added on top of the MMPP
        bursts.
    p_enter, p_exit, amplitude_shape, amplitude_scale, amplitude_mode:
        MMPP parameters, shared across hotspots (per-hotspot chains remain
        independent because they are independently seeded); see
        :class:`repro.workload.bursty.MmppBurstProcess`.
    jitter:
        Relative per-user spread around the shared hotspot amplitude.
    """

    def __init__(
        self,
        requests: Sequence[Request],
        rng: np.random.Generator,
        flash_crowds: Optional[FlashCrowdSchedule] = None,
        p_enter: float = 0.08,
        p_exit: float = 0.35,
        amplitude_shape: float = 1.8,
        amplitude_scale: float = 2.5,
        amplitude_mode: str = "slot",
        ramp_slots: int = 3,
        jitter: float = 0.2,
    ):
        super().__init__(requests)
        require_probability("jitter", jitter)
        self._jitter = float(jitter)
        self._flash_crowds = flash_crowds
        self._jitter_seed = int(rng.integers(2**63 - 1))

        hotspot_keys = sorted(
            {r.hotspot_index for r in requests if r.hotspot_index is not None}
        )
        self._processes: Dict[int, MmppBurstProcess] = {}
        for key in hotspot_keys:
            self._processes[key] = MmppBurstProcess(
                rng,
                p_enter=p_enter,
                p_exit=p_exit,
                amplitude_shape=amplitude_shape,
                amplitude_scale=amplitude_scale,
                amplitude_mode=amplitude_mode,
                ramp_slots=ramp_slots,
            )
        # Solo requests each get an independent chain keyed by request index.
        self._solo_processes: Dict[int, MmppBurstProcess] = {}
        for r in requests:
            if r.hotspot_index is None:
                self._solo_processes[r.index] = MmppBurstProcess(
                    rng,
                    p_enter=p_enter,
                    p_exit=p_exit,
                    amplitude_shape=amplitude_shape,
                    amplitude_scale=amplitude_scale,
                    amplitude_mode=amplitude_mode,
                    ramp_slots=ramp_slots,
                )
        # Correlation-group structure, precomputed once: the positions (in
        # request order) attached to each hotspot chain and to each solo
        # chain.  ``bursty_at`` evaluates every chain exactly once per slot
        # and scatters amplitudes through these index arrays — O(#chains +
        # |R|) numpy work instead of a per-request python loop.
        positions_by_key: Dict[int, List[int]] = {key: [] for key in hotspot_keys}
        for position, r in enumerate(requests):
            if r.hotspot_index is not None:
                positions_by_key[r.hotspot_index].append(position)
        self._hotspot_positions: Dict[int, np.ndarray] = {
            key: np.array(positions, dtype=int)
            for key, positions in positions_by_key.items()
        }
        self._solo_positions: List[Tuple[int, MmppBurstProcess]] = [
            (position, self._solo_processes[r.index])
            for position, r in enumerate(requests)
            if r.hotspot_index is None
        ]

    def bursty_at(self, slot: int) -> np.ndarray:
        """Vectorised `rho_l^bst(t)`: one chain evaluation per group.

        Bit-identical (float64) to :meth:`bursty_at_scalar`, the reference
        per-request formulation — pinned by the equivalence tests.
        """
        require_non_negative("slot", slot)
        jitter_rng = np.random.default_rng((self._jitter_seed, int(slot)))
        jitters = jitter_rng.uniform(
            1.0 - self._jitter, 1.0 + self._jitter, size=self.n_requests
        )
        amplitudes = np.zeros(self.n_requests)
        for key, process in self._processes.items():
            amplitude = process.amplitude_at(slot)
            if self._flash_crowds is not None:
                amplitude += self._flash_crowds.amplitude_at(key, slot)
            if amplitude != 0.0:
                amplitudes[self._hotspot_positions[key]] = amplitude
        for position, process in self._solo_positions:
            amplitudes[position] = process.amplitude_at(slot)
        return amplitudes * jitters

    def bursty_at_scalar(self, slot: int) -> np.ndarray:
        """Reference per-request formulation of :meth:`bursty_at`.

        Kept as the pinned scalar baseline for the equivalence tests and
        the ``bench_slot_loop`` benchmark; not used on the hot path.
        """
        require_non_negative("slot", slot)
        bursts = np.zeros(self.n_requests)
        jitter_rng = np.random.default_rng((self._jitter_seed, int(slot)))
        jitters = jitter_rng.uniform(
            1.0 - self._jitter, 1.0 + self._jitter, size=self.n_requests
        )
        for position, request in enumerate(self._requests):
            if request.hotspot_index is not None:
                process = self._processes[request.hotspot_index]
                amplitude = process.amplitude_at(slot)
                if self._flash_crowds is not None:
                    amplitude += self._flash_crowds.amplitude_at(
                        request.hotspot_index, slot
                    )
            else:
                amplitude = self._solo_processes[request.index].amplitude_at(slot)
            bursts[position] = amplitude * jitters[position]
        return bursts

    def hotspot_state(self, hotspot_index: int, slot: int) -> bool:
        """True when the hotspot's MMPP chain is bursting in ``slot``."""
        if hotspot_index not in self._processes:
            raise KeyError(f"no requests are attached to hotspot {hotspot_index}")
        return self._processes[hotspot_index].is_bursting(slot)

    @property
    def hotspot_indices(self) -> List[int]:
        """Hotspots that have at least one attached request."""
        return sorted(self._processes)

    def _flash_crowd_events(self) -> List[List[Any]]:
        """Canonical event list of the attached schedule ([] when absent)."""
        if self._flash_crowds is None:
            return []
        return self._flash_crowds.state_dict()["events"]

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["jitter"] = self._jitter
        state["jitter_seed"] = self._jitter_seed
        # The flash-crowd schedule is part of the realised trajectory:
        # omitting it let a run resume under a different (or missing)
        # schedule and silently realise different demands.
        state["flash_crowds"] = {"events": self._flash_crowd_events()}
        state["processes"] = {
            str(key): process.state_dict()
            for key, process in self._processes.items()
        }
        state["solo_processes"] = {
            str(key): process.state_dict()
            for key, process in self._solo_processes.items()
        }
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        if (
            state.get("jitter") != self._jitter
            or int(state["jitter_seed"]) != self._jitter_seed
        ):
            raise ValueError("checkpointed jitter realisation differs from this model's")
        theirs_crowds = state.get("flash_crowds")
        theirs_events = (
            [] if theirs_crowds is None
            else [list(event) for event in theirs_crowds["events"]]
        )
        if theirs_events != self._flash_crowd_events():
            raise ValueError(
                "checkpointed flash-crowd schedule differs from this model's "
                "(a resumed run must attach the exact schedule it was "
                "checkpointed under; pre-PR-6 checkpoints carry no schedule "
                "and can only resume schedule-free models)"
            )
        for label, mine in (
            ("processes", self._processes),
            ("solo_processes", self._solo_processes),
        ):
            theirs = state[label]
            # Compare as *sets*: zip-sorting strings against ints broke any
            # run with >= 10 keys ("10" sorts before "2" lexicographically).
            if set(theirs) != {str(key) for key in mine}:
                raise ValueError(
                    f"checkpointed {label} cover different hotspots/requests"
                )
            for key, process in mine.items():
                process.load_state_dict(theirs[str(key)])
