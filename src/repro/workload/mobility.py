"""User mobility: the third hidden feature the paper names (§I).

"Mobile users usually have various dynamic hidden features, such as their
locations, user group tags, and mobility patterns."  The shipped
experiments keep users static within a horizon (as the paper's evaluation
implicitly does); this module provides the substrate for mobility-aware
extensions: a hotspot-hopping waypoint model whose per-slot positions are
slot-keyed deterministic, plus a Pri_GD variant that re-derives its
coverage priorities from the moving positions every slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.priority import PriorityController
from repro.mec.geometry import Point, random_point_in_disk
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.validation import require_positive

__all__ = ["HotspotHoppingMobility", "MobilePriorityController"]


# repro: allow[STATE001] -- only mutates lazily-extended itinerary caches that are pure functions of (seed, user); regrown bit-identically after resume
class HotspotHoppingMobility:
    """Users dwell at a hotspot, then hop to a uniformly random other one.

    Per user: dwell times are drawn uniformly from ``dwell_range`` slots;
    while dwelling, the position is a fixed jittered offset near the
    hotspot (people do not teleport within a venue).  The whole itinerary
    of a user is a deterministic function of `(seed, user)` so positions
    are reproducible and order-independent.
    """

    def __init__(
        self,
        hotspot_locations: Sequence[Point],
        n_users: int,
        rng: np.random.Generator,
        dwell_range: Tuple[int, int] = (5, 15),
        jitter_m: float = 10.0,
        initial_hotspots: Optional[Sequence[int]] = None,
    ):
        if not hotspot_locations:
            raise ValueError("need at least one hotspot location")
        require_positive("n_users", n_users)
        low, high = dwell_range
        if not (isinstance(low, (int, np.integer)) and isinstance(high, (int, np.integer))):
            raise ValueError("dwell_range must be integer slots")
        if low < 1 or high < low:
            raise ValueError(f"dwell_range must be (low>=1, high>=low), got {dwell_range}")
        if jitter_m < 0:
            raise ValueError("jitter_m must be >= 0")
        self._hotspots = list(hotspot_locations)
        self._n_users = int(n_users)
        self._dwell = (int(low), int(high))
        self._jitter = float(jitter_m)
        self._seed = int(rng.integers(2**63 - 1))
        if initial_hotspots is not None:
            starts = list(initial_hotspots)
            if len(starts) != n_users:
                raise ValueError(
                    f"initial_hotspots must have one entry per user "
                    f"({n_users}), got {len(starts)}"
                )
            if any(not 0 <= h < len(self._hotspots) for h in starts):
                raise ValueError("initial hotspot index out of range")
            self._starts = [int(h) for h in starts]
        else:
            start_rng = np.random.default_rng((self._seed, 0))
            self._starts = [
                int(h) for h in start_rng.integers(0, len(self._hotspots), n_users)
            ]
        # Per-user itinerary cache: list of (hotspot, end_slot_exclusive).
        # Each user owns a persistent generator; legs are always appended
        # in order, so the realised itinerary is independent of the order
        # in which slots are queried.
        self._itineraries: Dict[int, List[Tuple[int, int]]] = {}
        self._user_rngs: Dict[int, np.random.Generator] = {}

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def n_hotspots(self) -> int:
        return len(self._hotspots)

    def _extend_itinerary(self, user: int, slot: int) -> List[Tuple[int, int]]:
        legs = self._itineraries.setdefault(user, [])
        if user not in self._user_rngs:
            self._user_rngs[user] = np.random.default_rng((self._seed, 1, user))
        user_rng = self._user_rngs[user]
        if not legs:
            dwell = int(user_rng.integers(self._dwell[0], self._dwell[1] + 1))
            legs.append((self._starts[user], dwell))
        while legs[-1][1] <= slot:
            current, end = legs[-1]
            if self.n_hotspots == 1:
                nxt = current
            else:
                nxt = int(user_rng.integers(0, self.n_hotspots - 1))
                if nxt >= current:
                    nxt += 1  # uniform over the *other* hotspots
            dwell = int(user_rng.integers(self._dwell[0], self._dwell[1] + 1))
            legs.append((nxt, end + dwell))
        return legs

    def hotspot_of(self, user: int, slot: int) -> int:
        """Which hotspot ``user`` is at in ``slot``."""
        if not 0 <= user < self._n_users:
            raise IndexError(f"user {user} out of range [0, {self._n_users})")
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        legs = self._extend_itinerary(user, slot)
        for hotspot, end in legs:
            if slot < end:
                return hotspot
        raise AssertionError("itinerary extension failed")  # pragma: no cover

    def position_of(self, user: int, slot: int) -> Point:
        """The user's position in ``slot``: its hotspot plus a fixed offset.

        The jitter offset is per (user, hotspot-visit-index) so a user
        keeps one spot for a whole dwell and picks a new one on return.
        """
        self.hotspot_of(user, slot)  # validates args, extends the itinerary
        legs = self._itineraries[user]
        leg_index = next(
            i for i, (_, end) in enumerate(legs) if slot < end
        )
        hotspot_index = legs[leg_index][0]
        anchor = self._hotspots[hotspot_index]
        offset_rng = np.random.default_rng((self._seed, 2, user, leg_index))
        return random_point_in_disk(anchor, self._jitter, offset_rng)

    def positions_at(self, slot: int) -> List[Point]:
        """Positions of every user in ``slot``."""
        return [self.position_of(user, slot) for user in range(self._n_users)]


class MobilePriorityController(PriorityController):
    """`Pri_GD` re-deriving coverage priorities from moving users.

    The static `Pri_GD` computes its coverage counts once; under mobility
    those go stale.  This variant queries a
    :class:`HotspotHoppingMobility` each slot (user `l` is request `l`)
    and rebuilds priorities and covering sets before assigning.
    """

    name = "Pri_GD_mobile"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
        mobility: HotspotHoppingMobility,
    ):
        if mobility.n_users != len(requests):
            raise ValueError(
                f"mobility covers {mobility.n_users} users, need {len(requests)}"
            )
        super().__init__(network, requests, rng)
        self._mobility = mobility

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        positions = self._mobility.positions_at(slot)
        self._priorities = np.array(
            [self.network.coverage_count(p) for p in positions]
        )
        self._covering = [
            np.array(self.network.covering_stations(p), dtype=int)
            for p in positions
        ]
        return super().decide(slot, demands)
