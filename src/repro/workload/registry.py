"""Named demand-model factories: ``make_workload``.

The workload counterpart of :func:`repro.core.make_controller`: the two
demand settings the paper evaluates — given constant demands (§IV) and
hotspot-correlated bursty demands (§V) — are registered by name, the name
is stamped onto the built model (``model.workload_name``) and enforced as
its identity, so a campaign spec's ``workload`` field names exactly the
demand process every cell of the sweep realises.

Factories are called as ``factory(requests, rng, **options)``; ``rng`` is
the demand stream of the repetition's seeding registry (the constant
model simply does not draw from it).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

import numpy as np

from repro.mec.requests import Request
from repro.utils.registry import Registry
from repro.workload.demand import BurstyDemandModel, ConstantDemandModel, DemandModel

__all__ = [
    "WORKLOADS",
    "WorkloadFactory",
    "register_workload",
    "workload_names",
    "make_workload",
]

WorkloadFactory = Callable[..., DemandModel]

#: The demand-model registry instance (names are campaign-spec identities).
WORKLOADS: Registry[DemandModel] = Registry(
    "workload",
    identity=lambda model: getattr(model, "workload_name", None),
)


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register ``factory`` under ``name`` (must be new and non-empty).

    The built model must carry ``workload_name == name`` —
    :func:`make_workload` enforces it, mirroring the controller registry.
    """
    WORKLOADS.register(name, factory)


def workload_names() -> Tuple[str, ...]:
    """All registered workload names, sorted."""
    return WORKLOADS.names()


def make_workload(
    name: str,
    requests: Sequence[Request],
    rng: np.random.Generator,
    **options: Any,
) -> DemandModel:
    """Build the demand model registered under ``name``.

    ``options`` are the model's own tuning parameters (e.g. ``jitter`` or
    ``p_enter`` for ``bursty``), forwarded verbatim.
    """
    return WORKLOADS.make(name, requests, rng, **options)


def _stamped(model: DemandModel, name: str) -> DemandModel:
    model.workload_name = name
    return model


def _constant(
    requests: Sequence[Request], rng: np.random.Generator, **options: Any
) -> DemandModel:
    """Given demands, `rho_l(t) = rho_l^bsc` (§IV; draws nothing from rng)."""
    del rng  # uniform factory signature; the constant model is draw-free
    return _stamped(ConstantDemandModel(requests, **options), "constant")


def _bursty(
    requests: Sequence[Request], rng: np.random.Generator, **options: Any
) -> DemandModel:
    """Hotspot-correlated MMPP bursts (§V setting)."""
    return _stamped(BurstyDemandModel(requests, rng, **options), "bursty")


register_workload("constant", _constant)
register_workload("bursty", _bursty)
