"""Burst processes: MMPP state chains and flash-crowd schedules.

Burstiness in the paper is *location-correlated*: "users in the same
location may have similar distributions of their data volumes. For example,
a few users may be playing the same VR game" (§V-A).  We model each
location cluster (hotspot) with a two-state Markov-modulated process:

* ``NORMAL`` — no extra traffic beyond the basic demand;
* ``BURST`` — every user at the hotspot draws a heavy burst volume.

A :class:`FlashCrowdSchedule` additionally injects *deterministic* burst
windows (the "sudden event" / museum-VR scenario) so experiments can place
a known flash crowd and check how controllers absorb it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.utils.validation import (
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = ["MmppBurstProcess", "FlashCrowdSchedule"]

NORMAL, BURST = 0, 1


class MmppBurstProcess:
    """Two-state Markov-modulated burst process for one hotspot.

    Parameters
    ----------
    p_enter:
        Per-slot probability of NORMAL -> BURST.
    p_exit:
        Per-slot probability of BURST -> NORMAL.  The mean burst length is
        ``1 / p_exit`` slots; the stationary burst fraction is
        ``p_enter / (p_enter + p_exit)``.
    amplitude_shape, amplitude_scale:
        Gamma parameters of the burst volume (MB).  A gamma with shape < 2
        is right-skewed, matching the "explosive bursts" the paper cites.
    amplitude_mode:
        ``"slot"`` (default) redraws the burst volume every slot — the
        high-variance "explosive bursts" regime of the multimedia traffic
        the paper cites, where per-slot volume is hard to extrapolate
        linearly.  ``"episode"`` draws one amplitude per burst episode
        (a flash crowd of a fixed size, e.g. the museum-VR example) with a
        small per-slot wobble controlled by ``slot_jitter``.

    The state at slot `t` is a deterministic function of `(seed, t)` via a
    cached recursive walk, so query order never changes the realisation.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_enter: float = 0.08,
        p_exit: float = 0.35,
        amplitude_shape: float = 1.8,
        amplitude_scale: float = 2.5,
        amplitude_mode: str = "slot",
        slot_jitter: float = 0.1,
        ramp_slots: int = 3,
    ):
        require_probability("p_enter", p_enter)
        require_probability("p_exit", p_exit)
        require_positive("amplitude_shape", amplitude_shape)
        require_positive("amplitude_scale", amplitude_scale)
        require_probability("slot_jitter", slot_jitter)
        if amplitude_mode not in ("slot", "episode"):
            raise ValueError(
                f"amplitude_mode must be 'slot' or 'episode', got {amplitude_mode!r}"
            )
        if not isinstance(ramp_slots, (int, np.integer)) or ramp_slots < 1:
            raise ValueError(f"ramp_slots must be a positive int, got {ramp_slots!r}")
        self._p_enter = float(p_enter)
        self._p_exit = float(p_exit)
        self._shape = float(amplitude_shape)
        self._scale = float(amplitude_scale)
        self._amplitude_mode = amplitude_mode
        self._slot_jitter = float(slot_jitter)
        self._ramp_slots = int(ramp_slots)
        self._seed = int(rng.integers(2**63 - 1))
        # Contiguous chain prefix: ``_states[0.._known]`` hold the walk so
        # far and ``_episode_starts[t]`` the first slot of the burst episode
        # containing ``t`` (-1 while NORMAL) — maintained *during* the
        # forward walk, so episode lookups never walk backwards again.
        self._states = np.full(16, NORMAL, dtype=np.int8)
        self._episode_starts = np.full(16, -1, dtype=np.int64)
        self._known = 0
        self._amplitude_cache: Dict[int, float] = {}

    def _advance_to(self, slot: int) -> None:
        """Extend the cached chain prefix through ``slot``."""
        if slot <= self._known:
            return
        if slot >= self._states.shape[0]:
            size = max(2 * self._states.shape[0], slot + 1)
            grown = np.full(size, NORMAL, dtype=np.int8)
            grown[: self._states.shape[0]] = self._states
            self._states = grown
            grown_starts = np.full(size, -1, dtype=np.int64)
            grown_starts[: self._episode_starts.shape[0]] = self._episode_starts
            self._episode_starts = grown_starts
        state = int(self._states[self._known])
        episode = int(self._episode_starts[self._known])
        for t in range(self._known + 1, slot + 1):
            u = float(np.random.default_rng((self._seed, 0, t)).uniform())
            if state == NORMAL and u < self._p_enter:
                state = BURST
                episode = t
            elif state == BURST and u < self._p_exit:
                state = NORMAL
                episode = -1
            self._states[t] = state
            self._episode_starts[t] = episode
        self._known = slot

    def state_at(self, slot: int) -> int:
        """The chain state (NORMAL or BURST) in ``slot``."""
        require_non_negative("slot", slot)
        self._advance_to(int(slot))
        return int(self._states[slot])

    def is_bursting(self, slot: int) -> bool:
        """True when the hotspot is in the BURST state in ``slot``."""
        return self.state_at(slot) == BURST

    def state_dict(self) -> Dict[str, Any]:
        """Identity of this process's realisation (see :mod:`repro.state`).

        Every value at every slot is a deterministic function of these
        fields — the caches rebuild on demand, so nothing mutable needs to
        travel; a resumed run only *verifies* it rebuilt the same world.
        """
        return {
            "seed": self._seed,
            "p_enter": self._p_enter,
            "p_exit": self._p_exit,
            "amplitude_shape": self._shape,
            "amplitude_scale": self._scale,
            "amplitude_mode": self._amplitude_mode,
            "slot_jitter": self._slot_jitter,
            "ramp_slots": self._ramp_slots,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Verify this process realises the checkpointed trajectory."""
        mine = self.state_dict()
        mismatched = sorted(
            key for key in mine if mine[key] != state.get(key)
        )
        if mismatched:
            raise ValueError(
                "burst process does not match checkpoint "
                f"(differs in: {', '.join(mismatched)})"
            )

    def episode_start(self, slot: int) -> int:
        """First slot of the burst episode containing ``slot``.

        Only meaningful while bursting; raises otherwise.  O(1) after the
        chain has been walked to ``slot`` — episode boundaries are recorded
        during the forward walk instead of rediscovered by walking
        backwards per query.
        """
        if not self.is_bursting(slot):
            raise ValueError(f"slot {slot} is not inside a burst episode")
        return int(self._episode_starts[slot])

    def amplitude_at(self, slot: int) -> float:
        """Burst volume (MB) a user at this hotspot adds in ``slot``.

        Zero outside burst windows.  Within a burst, all users of the
        hotspot share the same amplitude (they are "playing the same VR
        game"); per-user jitter is applied by the demand model on top.
        The value is memoised: demand models query it once per slot no
        matter how many requests share the hotspot.
        """
        if not self.is_bursting(slot):
            return 0.0
        cached = self._amplitude_cache.get(slot)
        if cached is not None:
            return cached
        # Flash crowds build up over `ramp_slots`: the crowd arrives over
        # several slots rather than materialising at once.  The ramp is the
        # learnable structure ("the rule of such burstiness") a linear
        # extrapolator systematically lags.
        start = self.episode_start(slot)
        ramp = min(1.0, (slot - start + 1) / self._ramp_slots)
        if self._amplitude_mode == "slot":
            amp_rng = np.random.default_rng((self._seed, 1, int(slot)))
            amplitude = ramp * float(amp_rng.gamma(self._shape, self._scale))
            self._amplitude_cache[int(slot)] = amplitude
            return amplitude
        episode_rng = np.random.default_rng((self._seed, 1, start))
        amplitude = float(episode_rng.gamma(self._shape, self._scale))
        if self._slot_jitter > 0.0:
            wobble_rng = np.random.default_rng((self._seed, 2, int(slot)))
            amplitude *= float(
                wobble_rng.uniform(1.0 - self._slot_jitter, 1.0 + self._slot_jitter)
            )
        amplitude = ramp * amplitude
        self._amplitude_cache[int(slot)] = amplitude
        return amplitude

    @property
    def stationary_burst_fraction(self) -> float:
        """Long-run fraction of slots spent bursting."""
        denominator = self._p_enter + self._p_exit
        if denominator == 0.0:
            return 0.0
        return self._p_enter / denominator

    @property
    def mean_burst_amplitude(self) -> float:
        """Expected per-slot burst volume given the chain is bursting."""
        return self._shape * self._scale


@dataclass(frozen=True)
class _Window:
    start: int
    end: int  # exclusive
    amplitude_mb: float


class FlashCrowdSchedule:
    """Deterministic burst windows layered on top of the MMPP chains.

    Each window says: "between slots ``start`` and ``end``, hotspot
    ``hotspot_index`` experiences a flash crowd of ``amplitude_mb`` extra
    megabytes per user per slot".  Used by examples and failure-injection
    tests to create *known* exceptions the learner must absorb.
    """

    def __init__(self) -> None:
        self._windows: Dict[int, List[_Window]] = {}

    def add_event(
        self, hotspot_index: int, start: int, duration: int, amplitude_mb: float
    ) -> "FlashCrowdSchedule":
        """Register an event; returns self for chaining."""
        require_non_negative("hotspot_index", hotspot_index)
        require_non_negative("start", start)
        require_positive("duration", duration)
        require_positive("amplitude_mb", amplitude_mb)
        window = _Window(start=start, end=start + duration, amplitude_mb=amplitude_mb)
        self._windows.setdefault(hotspot_index, []).append(window)
        self._windows[hotspot_index].sort(key=lambda w: w.start)
        return self

    def amplitude_at(self, hotspot_index: int, slot: int) -> float:
        """Total scheduled flash-crowd amplitude at a hotspot in ``slot``."""
        require_non_negative("slot", slot)
        total = 0.0
        for window in self._windows.get(hotspot_index, []):
            if window.start <= slot < window.end:
                total += window.amplitude_mb
        return total

    def events_for(self, hotspot_index: int) -> List[Tuple[int, int, float]]:
        """All (start, end, amplitude) windows registered for a hotspot."""
        return [(w.start, w.end, w.amplitude_mb) for w in self._windows.get(hotspot_index, [])]

    def state_dict(self) -> Dict[str, Any]:
        """Canonical identity of the schedule (see :mod:`repro.state`).

        The windows *are* the realisation — a demand model resumed under a
        different schedule realises a different trajectory, so checkpoints
        carry the full event list in a deterministic order for
        verification on load.
        """
        events = sorted(
            (hotspot, w.start, w.end, w.amplitude_mb)
            for hotspot, windows in self._windows.items()
            for w in windows
        )
        return {
            "events": [
                [int(h), int(s), int(e), float(a)] for h, s, e, a in events
            ]
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        windows: Dict[int, List[_Window]] = {}
        for hotspot, start, end, amplitude in state["events"]:
            windows.setdefault(int(hotspot), []).append(
                _Window(start=int(start), end=int(end), amplitude_mb=float(amplitude))
            )
        for entries in windows.values():
            entries.sort(key=lambda w: w.start)
        self._windows = windows

    @property
    def n_events(self) -> int:
        """Total number of registered windows."""
        return sum(len(ws) for ws in self._windows.values())
