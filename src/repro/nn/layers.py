"""Neural-network layers: Dense, LSTM, Bi-LSTM (§V-B building blocks).

The Info-RNN-GAN uses "a bidirectional two-layer loop RNN (Bi-LSTM)" for
both generator and discriminator; :class:`BiLSTM` composes two
:class:`LSTM` stacks run in opposite time directions with concatenated
outputs, exactly that architecture.

Sequence convention: time-major tensors of shape ``(T, B, features)``.

Execution paths: :class:`LSTM` (and the GRU twin in
:mod:`repro.nn.recurrent`) runs through the fused sequence kernels of
:mod:`repro.nn.fused` by default — one autograd node and one
input-projection GEMM per layer — and falls back to the per-step cell
loop (``forward_stepwise``) when the kernels are disabled.  Both paths
evaluate the cell expression ``(x_t @ W_x + b) + h @ W_h`` in the same
floating-point order, so their outputs are bit-identical in float64
(asserted in the test suite).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.nn import fused as fused_kernels
from repro.nn.fused import lstm_sequence
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.validation import require_positive

__all__ = ["Module", "Dense", "LSTMCell", "LSTM", "BiLSTM", "Sequential"]


class Module:
    """Base class with recursive parameter discovery.

    Any :class:`Tensor` attribute with ``requires_grad=True``, any nested
    :class:`Module`, and any list/tuple of either is collected by
    :meth:`parameters` — mirroring the framework convention users expect.
    """

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        seen = set()

        def collect(value) -> None:
            if isinstance(value, Tensor):
                if value.requires_grad and id(value) not in seen:
                    seen.add(id(value))
                    params.append(value)
            elif isinstance(value, Module):
                for p in value.parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        params.append(p)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    collect(item)

        for value in self.__dict__.values():
            collect(value)
        return params

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    @property
    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    @property
    def dtype(self) -> np.dtype:
        """The parameters' dtype (modules are homogeneous by construction)."""
        params = self.parameters()
        if not params:
            raise ValueError("module has no parameters")
        return params[0].data.dtype

    def astype(self, dtype) -> "Module":
        """Convert every parameter to ``dtype`` in place; returns ``self``.

        The float32 switch: convert **before** creating optimizers so
        their moment buffers match.  Gradient buffers are dropped (they
        are lazily re-allocated in the new dtype).  Gradient *checking*
        stays a float64 affair — see :func:`repro.nn.gradcheck.gradcheck`,
        which rejects non-float64 parameters.
        """
        for p in self.parameters():
            p.data = p.data.astype(dtype)
            p.grad = None
            p._grad_buffer = None
        return self

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot-uniform initialisation."""
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``y = activation(x @ W + b)`` over ``(B, in)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: Optional[str] = None,
    ):
        require_positive("in_features", in_features)
        require_positive("out_features", out_features)
        valid = {None, "tanh", "sigmoid", "relu"}
        if activation not in valid:
            raise ValueError(f"activation must be one of {valid}, got {activation!r}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = activation
        self.weight = Tensor(_xavier(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros((1, out_features)), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        out = x @ self.weight + self.bias
        if self.activation == "tanh":
            return out.tanh()
        if self.activation == "sigmoid":
            return out.sigmoid()
        if self.activation == "relu":
            return out.relu()
        return out


class LSTMCell(Module):
    """One LSTM step: ``(x_t, h, c) -> (h', c')``.

    Gates are computed from a single fused weight matrix over
    ``[x_t, h]``; the forget-gate bias is initialised to 1 (standard
    remedy against early vanishing memory).  The forward evaluates the
    split form ``(x @ W[:in] + b) + h @ W[in:]`` — the same expression,
    in the same order, as the fused sequence kernel, which is what makes
    the two execution paths bit-identical.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        require_positive("input_size", input_size)
        require_positive("hidden_size", hidden_size)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        fused_in = input_size + hidden_size
        self.weight = Tensor(
            _xavier(rng, fused_in, 4 * hidden_size), requires_grad=True
        )
        bias = np.zeros((1, 4 * hidden_size))
        bias[0, hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch (in the cell's dtype)."""
        require_positive("batch", batch)
        zeros = np.zeros((batch, self.hidden_size), dtype=self.weight.data.dtype)
        return Tensor(zeros), Tensor(zeros.copy())

    def _step(
        self, x: Tensor, h: Tensor, c: Tensor, w_x: Tensor, w_h: Tensor
    ) -> Tuple[Tensor, Tensor]:
        """Gate math given pre-sliced weights (hoisted by the LSTM loop)."""
        fused = x @ w_x + self.bias + h @ w_h
        H = self.hidden_size
        i_gate = fused[:, 0 * H : 1 * H].sigmoid()
        f_gate = fused[:, 1 * H : 2 * H].sigmoid()
        g_gate = fused[:, 2 * H : 3 * H].tanh()
        o_gate = fused[:, 3 * H : 4 * H].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"expected input of shape (batch, {self.input_size}), got {x.shape}"
            )
        In = self.input_size
        return self._step(x, h, c, self.weight[:In], self.weight[In:])


class LSTM(Module):
    """A (possibly multi-layer) unidirectional LSTM over ``(T, B, in)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        require_positive("num_layers", num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def _validate(self, sequence: Tensor) -> None:
        if sequence.ndim != 3 or sequence.shape[2] != self.input_size:
            raise ValueError(
                f"expected sequence of shape (T, batch, {self.input_size}), "
                f"got {sequence.shape}"
            )

    def forward(self, sequence: Tensor) -> Tensor:
        """Run the stack; returns hidden outputs of the top layer, (T, B, H).

        Uses the fused sequence kernel (one autograd node per layer)
        unless :func:`repro.nn.fused.use_sequence_kernels` disabled it.
        """
        self._validate(sequence)
        if not fused_kernels.sequence_kernels_enabled():
            return self.forward_stepwise(sequence)
        with obs.span("nn.forward"):
            out = sequence
            for cell in self.cells:
                out = lstm_sequence(out, cell.weight, cell.bias, cell.hidden_size)
            return out

    def forward_stepwise(self, sequence: Tensor) -> Tensor:
        """Per-step reference path: one graph node per op per timestep."""
        self._validate(sequence)
        horizon, batch = sequence.shape[0], sequence.shape[1]
        with obs.span("nn.forward"):
            layer_inputs = [sequence[t] for t in range(horizon)]
            for cell in self.cells:
                In = cell.input_size
                # Hoist the weight split out of the time loop: one getitem
                # node per layer instead of two per step.
                w_x, w_h = cell.weight[:In], cell.weight[In:]
                h, c = cell.initial_state(batch)
                outputs: List[Tensor] = []
                for x_t in layer_inputs:
                    h, c = cell._step(x_t, h, c, w_x, w_h)
                    outputs.append(h)
                layer_inputs = outputs
            return stack(layer_inputs, axis=0)


class BiLSTM(Module):
    """Bidirectional LSTM: forward + time-reversed stacks, concatenated.

    Output shape is ``(T, B, 2 * hidden)`` — the decision at slot `t` sees
    "historical and future features in the data sample" (§V-B).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        self.forward_lstm = LSTM(input_size, hidden_size, rng, num_layers)
        self.backward_lstm = LSTM(input_size, hidden_size, rng, num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)

    @property
    def output_size(self) -> int:
        """Feature size of the concatenated output (2 * hidden)."""
        return 2 * self.hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        forward_out = self.forward_lstm(sequence)
        backward_out = self.backward_lstm(sequence.flip(0)).flip(0)
        return concat([forward_out, backward_out], axis=-1)


class Sequential(Module):
    """Chain of modules applied in order (used for the dense heads)."""

    def __init__(self, *modules: Module):
        if not modules:
            raise ValueError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
