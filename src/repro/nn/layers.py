"""Neural-network layers: Dense, LSTM, Bi-LSTM (§V-B building blocks).

The Info-RNN-GAN uses "a bidirectional two-layer loop RNN (Bi-LSTM)" for
both generator and discriminator; :class:`BiLSTM` composes two
:class:`LSTM` stacks run in opposite time directions with concatenated
outputs, exactly that architecture.

Sequence convention: time-major tensors of shape ``(T, B, features)``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor, concat, stack
from repro.utils.validation import require_positive

__all__ = ["Module", "Dense", "LSTMCell", "LSTM", "BiLSTM", "Sequential"]


class Module:
    """Base class with recursive parameter discovery.

    Any :class:`Tensor` attribute with ``requires_grad=True``, any nested
    :class:`Module`, and any list/tuple of either is collected by
    :meth:`parameters` — mirroring the framework convention users expect.
    """

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        seen = set()

        def collect(value) -> None:
            if isinstance(value, Tensor):
                if value.requires_grad and id(value) not in seen:
                    seen.add(id(value))
                    params.append(value)
            elif isinstance(value, Module):
                for p in value.parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        params.append(p)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    collect(item)

        for value in self.__dict__.values():
            collect(value)
        return params

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    @property
    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot-uniform initialisation."""
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``y = activation(x @ W + b)`` over ``(B, in)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: Optional[str] = None,
    ):
        require_positive("in_features", in_features)
        require_positive("out_features", out_features)
        valid = {None, "tanh", "sigmoid", "relu"}
        if activation not in valid:
            raise ValueError(f"activation must be one of {valid}, got {activation!r}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = activation
        self.weight = Tensor(_xavier(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros((1, out_features)), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        out = x @ self.weight + self.bias
        if self.activation == "tanh":
            return out.tanh()
        if self.activation == "sigmoid":
            return out.sigmoid()
        if self.activation == "relu":
            return out.relu()
        return out


class LSTMCell(Module):
    """One LSTM step: ``(x_t, h, c) -> (h', c')``.

    Gates are computed from a single fused weight matrix over
    ``[x_t, h]``; the forget-gate bias is initialised to 1 (standard
    remedy against early vanishing memory).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        require_positive("input_size", input_size)
        require_positive("hidden_size", hidden_size)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        fused_in = input_size + hidden_size
        self.weight = Tensor(
            _xavier(rng, fused_in, 4 * hidden_size), requires_grad=True
        )
        bias = np.zeros((1, 4 * hidden_size))
        bias[0, hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch."""
        require_positive("batch", batch)
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"expected input of shape (batch, {self.input_size}), got {x.shape}"
            )
        fused = concat([x, h], axis=-1) @ self.weight + self.bias
        H = self.hidden_size
        i_gate = fused[:, 0 * H : 1 * H].sigmoid()
        f_gate = fused[:, 1 * H : 2 * H].sigmoid()
        g_gate = fused[:, 2 * H : 3 * H].tanh()
        o_gate = fused[:, 3 * H : 4 * H].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """A (possibly multi-layer) unidirectional LSTM over ``(T, B, in)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        require_positive("num_layers", num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def forward(self, sequence: Tensor) -> Tensor:
        """Run the stack; returns hidden outputs of the top layer, (T, B, H)."""
        if sequence.ndim != 3 or sequence.shape[2] != self.input_size:
            raise ValueError(
                f"expected sequence of shape (T, batch, {self.input_size}), "
                f"got {sequence.shape}"
            )
        horizon, batch = sequence.shape[0], sequence.shape[1]
        layer_inputs = [sequence[t] for t in range(horizon)]
        for cell in self.cells:
            state = cell.initial_state(batch)
            outputs: List[Tensor] = []
            for x_t in layer_inputs:
                h, c = cell(x_t, state)
                state = (h, c)
                outputs.append(h)
            layer_inputs = outputs
        return stack(layer_inputs, axis=0)


class BiLSTM(Module):
    """Bidirectional LSTM: forward + time-reversed stacks, concatenated.

    Output shape is ``(T, B, 2 * hidden)`` — the decision at slot `t` sees
    "historical and future features in the data sample" (§V-B).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        self.forward_lstm = LSTM(input_size, hidden_size, rng, num_layers)
        self.backward_lstm = LSTM(input_size, hidden_size, rng, num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)

    @property
    def output_size(self) -> int:
        """Feature size of the concatenated output (2 * hidden)."""
        return 2 * self.hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        horizon = sequence.shape[0]
        forward_out = self.forward_lstm(sequence)
        reversed_in = stack([sequence[t] for t in reversed(range(horizon))], axis=0)
        backward_raw = self.backward_lstm(reversed_in)
        backward_out = stack(
            [backward_raw[t] for t in reversed(range(horizon))], axis=0
        )
        return concat([forward_out, backward_out], axis=-1)


class Sequential(Module):
    """Chain of modules applied in order (used for the dense heads)."""

    def __init__(self, *modules: Module):
        if not modules:
            raise ValueError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
