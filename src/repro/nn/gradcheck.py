"""Numerical gradient verification for the autograd engine.

The whole GAN rests on these gradients being right, so the test suite
checks every layer and loss against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    f: Callable[[], Tensor], parameter: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``parameter``.

    ``f`` must recompute the forward pass from scratch on each call (it is
    invoked twice per parameter entry).
    """
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    grad = np.zeros_like(parameter.data)
    flat_param = parameter.data.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_param.size):
        original = flat_param[index]
        flat_param[index] = original + eps
        plus = f().item()
        flat_param[index] = original - eps
        minus = f().item()
        flat_param[index] = original
        flat_grad[index] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    f: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare autograd gradients of scalar ``f()`` against finite differences.

    Raises ``AssertionError`` with the offending parameter index on
    mismatch; returns True when all gradients agree.
    """
    params = list(parameters)
    if not params:
        raise ValueError("gradcheck needs at least one parameter")
    for p in params:
        if not p.requires_grad:
            raise ValueError("all checked parameters must require gradients")
        if p.data.dtype != np.float64:
            raise ValueError(
                "gradcheck requires float64 parameters (central differences "
                f"drown in float32 rounding noise), got {p.data.dtype}"
            )
        p.zero_grad()
    output = f()
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()
    analytic = [
        p.grad.copy() if p.grad is not None else np.zeros_like(p.data) for p in params
    ]
    for index, p in enumerate(params):
        numeric = numerical_gradient(f, p, eps=eps)
        if not np.allclose(analytic[index], numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic[index] - numeric))
            raise AssertionError(
                f"gradient mismatch on parameter {index}: "
                f"max abs difference {worst:.3e}\n"
                f"analytic:\n{analytic[index]}\nnumeric:\n{numeric}"
            )
    return True
