"""Optimisers: SGD (with momentum) and Adam.

GAN training uses Adam (the de-facto choice for adversarial training);
SGD is kept for the simpler regression fits and ablations.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.validation import require_positive, require_probability

__all__ = ["Optimizer", "Sgd", "Adam"]


class Optimizer(abc.ABC):
    """Updates a fixed list of parameters in place from their gradients."""

    def __init__(self, parameters: Sequence[Tensor]):
        params = list(parameters)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        for p in params:
            if not p.requires_grad:
                raise ValueError("all optimised tensors must require gradients")
        self._params: List[Tensor] = params

    @property
    def parameters(self) -> List[Tensor]:
        return list(self._params)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient (call before each backward).

        This only drops the ``grad`` reference; each tensor keeps its
        owned gradient buffer and the next backward overwrites it in
        place (see ``Tensor.zero_grad``), so the zero/accumulate cycle
        allocates nothing.
        """
        for p in self._params:
            p.zero_grad()

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update from the currently-accumulated gradients.

        Parameters with ``grad is None`` (not touched by the last backward)
        are skipped.
        """

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable slot state (see :mod:`repro.state`).

        Hyper-parameters (lr, betas, momentum) are construction config,
        not state — the caller rebuilds the optimizer and restores only
        the accumulated slots.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""

    def _check_slot_shapes(self, slots: Sequence[np.ndarray], label: str) -> None:
        if len(slots) != len(self._params):
            raise ValueError(
                f"checkpoint holds {len(slots)} {label} buffers, optimizer "
                f"has {len(self._params)} parameters"
            )
        for index, (slot, p) in enumerate(zip(slots, self._params)):
            if slot.shape != p.data.shape:
                raise ValueError(
                    f"{label} buffer {index} shape {slot.shape} does not "
                    f"match parameter shape {p.data.shape}"
                )


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        require_positive("lr", lr)
        require_probability("momentum", momentum)
        self._lr = float(lr)
        self._momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self._params]

    def step(self) -> None:
        for p, velocity in zip(self._params, self._velocity):
            if p.grad is None:
                continue
            velocity *= self._momentum
            velocity -= self._lr * p.grad
            p.data += velocity

    def state_dict(self) -> Dict[str, Any]:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        velocity = [np.asarray(v, dtype=float) for v in state["velocity"]]
        self._check_slot_shapes(velocity, "velocity")
        self._velocity = [v.copy() for v in velocity]


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        require_positive("lr", lr)
        require_probability("beta1", beta1)
        require_probability("beta2", beta2)
        require_positive("eps", eps)
        self._lr = float(lr)
        self._beta1 = float(beta1)
        self._beta2 = float(beta2)
        self._eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self._params]
        self._v = [np.zeros_like(p.data) for p in self._params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self._beta1**self._t
        correction2 = 1.0 - self._beta2**self._t
        for p, m, v in zip(self._params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self._beta1
            m += (1.0 - self._beta1) * p.grad
            v *= self._beta2
            v += (1.0 - self._beta2) * (p.grad**2)
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self._lr * m_hat / (np.sqrt(v_hat) + self._eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        m = [np.asarray(x, dtype=float) for x in state["m"]]
        v = [np.asarray(x, dtype=float) for x in state["v"]]
        self._check_slot_shapes(m, "first-moment")
        self._check_slot_shapes(v, "second-moment")
        self._t = int(state["t"])
        self._m = [x.copy() for x in m]
        self._v = [x.copy() for x in v]
