"""GRU layers: the lighter recurrent alternative to LSTM (extension).

The paper specifies Bi-LSTMs; GRUs are the standard lighter-weight
substitute with one less gate and no cell state.  Provided so the GAN can
be instantiated with either cell (``rnn_type="gru"``), which the
`abl-pred` style experiments can use to probe architecture sensitivity.

Like :class:`repro.nn.layers.LSTM`, :class:`GRU` runs through the fused
sequence kernel of :mod:`repro.nn.fused` by default and keeps the
per-step cell loop as the bit-identical ``forward_stepwise`` reference.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import obs
from repro.nn import fused as fused_kernels
from repro.nn.fused import gru_sequence
from repro.nn.layers import BiLSTM, Module, _xavier
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.validation import require_positive

__all__ = ["GRUCell", "GRU", "BiGRU", "make_birnn"]


class GRUCell(Module):
    """One GRU step: ``(x_t, h) -> h'``.

    Gates: update `z`, reset `r`, candidate `n`:

        z = sigmoid(W_z [x, h]);  r = sigmoid(W_r [x, h])
        n = tanh(W_n [x, r * h]);  h' = (1 - z) * n + z * h

    Evaluated in the split form ``(x @ W[:in] + b) + s @ W[in:]`` (with
    ``s`` the hidden or reset-gated hidden), matching the fused sequence
    kernel's floating-point order exactly.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        require_positive("input_size", input_size)
        require_positive("hidden_size", hidden_size)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        fused_in = input_size + hidden_size
        self.gate_weight = Tensor(
            _xavier(rng, fused_in, 2 * hidden_size), requires_grad=True
        )
        self.gate_bias = Tensor(np.zeros((1, 2 * hidden_size)), requires_grad=True)
        self.candidate_weight = Tensor(
            _xavier(rng, fused_in, hidden_size), requires_grad=True
        )
        self.candidate_bias = Tensor(np.zeros((1, hidden_size)), requires_grad=True)

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state for a batch (in the cell's dtype)."""
        require_positive("batch", batch)
        return Tensor(
            np.zeros((batch, self.hidden_size), dtype=self.gate_weight.data.dtype)
        )

    def _step(
        self,
        x: Tensor,
        h: Tensor,
        wg_x: Tensor,
        wg_h: Tensor,
        wn_x: Tensor,
        wn_h: Tensor,
    ) -> Tensor:
        """Gate math given pre-sliced weights (hoisted by the GRU loop)."""
        H = self.hidden_size
        gates = x @ wg_x + self.gate_bias + h @ wg_h
        z_gate = gates[:, 0:H].sigmoid()
        r_gate = gates[:, H : 2 * H].sigmoid()
        candidate = (
            x @ wn_x + self.candidate_bias + (r_gate * h) @ wn_h
        ).tanh()
        return (1.0 - z_gate) * candidate + z_gate * h

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"expected input of shape (batch, {self.input_size}), got {x.shape}"
            )
        In = self.input_size
        return self._step(
            x,
            h,
            self.gate_weight[:In],
            self.gate_weight[In:],
            self.candidate_weight[:In],
            self.candidate_weight[In:],
        )


class GRU(Module):
    """A (possibly multi-layer) unidirectional GRU over ``(T, B, in)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        require_positive("num_layers", num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def _validate(self, sequence: Tensor) -> None:
        if sequence.ndim != 3 or sequence.shape[2] != self.input_size:
            raise ValueError(
                f"expected sequence of shape (T, batch, {self.input_size}), "
                f"got {sequence.shape}"
            )

    def forward(self, sequence: Tensor) -> Tensor:
        self._validate(sequence)
        if not fused_kernels.sequence_kernels_enabled():
            return self.forward_stepwise(sequence)
        with obs.span("nn.forward"):
            out = sequence
            for cell in self.cells:
                out = gru_sequence(
                    out,
                    cell.gate_weight,
                    cell.gate_bias,
                    cell.candidate_weight,
                    cell.candidate_bias,
                    cell.hidden_size,
                )
            return out

    def forward_stepwise(self, sequence: Tensor) -> Tensor:
        """Per-step reference path: one graph node per op per timestep."""
        self._validate(sequence)
        horizon, batch = sequence.shape[0], sequence.shape[1]
        with obs.span("nn.forward"):
            layer_inputs = [sequence[t] for t in range(horizon)]
            for cell in self.cells:
                In = cell.input_size
                wg_x, wg_h = cell.gate_weight[:In], cell.gate_weight[In:]
                wn_x, wn_h = cell.candidate_weight[:In], cell.candidate_weight[In:]
                state = cell.initial_state(batch)
                outputs: List[Tensor] = []
                for x_t in layer_inputs:
                    state = cell._step(x_t, state, wg_x, wg_h, wn_x, wn_h)
                    outputs.append(state)
                layer_inputs = outputs
            return stack(layer_inputs, axis=0)


class BiGRU(Module):
    """Bidirectional GRU, output ``(T, B, 2 * hidden)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        self.forward_rnn = GRU(input_size, hidden_size, rng, num_layers)
        self.backward_rnn = GRU(input_size, hidden_size, rng, num_layers)
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        forward_out = self.forward_rnn(sequence)
        backward_out = self.backward_rnn(sequence.flip(0)).flip(0)
        return concat([forward_out, backward_out], axis=-1)


def make_birnn(
    rnn_type: str,
    input_size: int,
    hidden_size: int,
    rng: np.random.Generator,
    num_layers: int = 1,
):
    """Factory: a bidirectional recurrent trunk of the requested type."""
    if rnn_type == "lstm":
        return BiLSTM(input_size, hidden_size, rng, num_layers=num_layers)
    if rnn_type == "gru":
        return BiGRU(input_size, hidden_size, rng, num_layers=num_layers)
    raise ValueError(f"rnn_type must be 'lstm' or 'gru', got {rnn_type!r}")
