"""Differentiable functions built on the Tensor primitives.

These compose the ops in :mod:`repro.nn.tensor`, so their gradients come
for free and are covered by the same gradient checks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "softplus",
    "binary_cross_entropy",
    "categorical_cross_entropy",
    "mse",
]

_EPS = 1e-12


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    The max-subtraction uses a detached constant, which leaves the
    gradient of softmax unchanged (softmax is shift-invariant).
    """
    shifted = x - np.max(x.data, axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably via the log-sum-exp trick."""
    shifted = x - np.max(x.data, axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softplus(x: Tensor) -> Tensor:
    """log(1 + e^x): the positive-output head of the demand generator.

    Computed as ``max(x, 0) + log1p(exp(-|x|))`` for stability; expressed
    with the primitive ops so the gradient flows: relu(x) + log(1+exp(-|x|))
    where |x| = relu(x) + relu(-x).
    """
    positive = x.relu()
    negative_abs = -(positive + (-x).relu())  # == -|x|
    return positive + (negative_abs.exp() + 1.0).log()


def binary_cross_entropy(probabilities: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between predicted probabilities and 0/1 targets.

    This is the discriminator loss of Eq. (23): with targets=1 for true
    data (`log D(rho)`) and targets=0 for generated data
    (`log(1 - D(G(z, c)))`), up to sign.
    """
    targets = np.asarray(targets, dtype=probabilities.data.dtype)
    if targets.shape != probabilities.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match predictions "
            f"{probabilities.shape}"
        )
    if np.any((targets != 0.0) & (targets != 1.0)):
        raise ValueError("binary_cross_entropy targets must be 0 or 1")
    clipped = probabilities.clip_min(_EPS)
    one_minus = (1.0 - probabilities).clip_min(_EPS)
    losses = -(clipped.log() * targets) - (one_minus.log() * (1.0 - targets))
    return losses.mean()


def categorical_cross_entropy(logits: Tensor, one_hot_targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between softmax(logits) and one-hot targets.

    This is the `Q` head loss: maximising the InfoGAN lower bound
    `L1(G, Q)` (Eq. 25) reduces to minimising the cross-entropy between
    `Q(c' | x)` and the true latent code `c`.
    """
    targets = np.asarray(one_hot_targets, dtype=logits.data.dtype)
    if targets.shape != logits.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match logits {logits.shape}"
        )
    row_sums = targets.sum(axis=-1)
    if not np.allclose(row_sums, 1.0):
        raise ValueError("one-hot targets must sum to 1 along the last axis")
    log_probs = log_softmax(logits, axis=-1)
    picked = (log_probs * targets).sum(axis=-1)
    return -picked.mean()


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against constant targets."""
    targets = np.asarray(targets, dtype=predictions.data.dtype)
    if targets.shape != predictions.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match predictions "
            f"{predictions.shape}"
        )
    diff = predictions - targets
    return (diff * diff).mean()


def pinball(predictions: Tensor, targets: np.ndarray, quantile: float) -> Tensor:
    """Quantile (pinball) loss: trains the predictor toward a quantile.

    ``quantile > 0.5`` penalises under-prediction harder than
    over-prediction — the right asymmetry for capacity planning, where a
    demand that comes in above the forecast overloads a station while one
    below it merely wastes head-room.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    targets = np.asarray(targets, dtype=predictions.data.dtype)
    if targets.shape != predictions.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match predictions "
            f"{predictions.shape}"
        )
    shortfall = (Tensor(targets) - predictions).relu()      # under-prediction
    excess = (predictions - targets).relu()                 # over-prediction
    return (shortfall * quantile + excess * (1.0 - quantile)).mean()
