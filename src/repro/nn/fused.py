"""Fused sequence kernels for LSTM/GRU: one autograd node per layer pass.

The stepwise recurrent path builds ~15 graph nodes per timestep (slices,
matmuls, gate nonlinearities, state updates); at the GAN's scale the
Python/closure overhead of those nodes dominates the arithmetic.  The
kernels here run the whole ``(T, B, in)`` sequence as **one** graph node:

* the input-to-hidden projection is hoisted out of the time loop and
  computed for the entire sequence in a single GEMM per layer/direction
  (it does not depend on the recurrent state);
* the per-step recurrence runs in plain numpy, caching the activations
  needed by the hand-written BPTT backward (skipped entirely under
  :class:`~repro.nn.tensor.no_grad`);
* the backward pass is fully vectorised: the per-step gate deltas are
  accumulated into ``(T, B, ·)`` arrays and the weight/bias/input
  gradients fall out of three batched GEMMs.

**Bit-identity contract**: with the weights held in the cells' fused
layout, the kernels evaluate exactly the expression the (split-form)
stepwise cells evaluate, in the same floating-point order —
``(x_t @ W_x + b) + h @ W_h`` with the shared
:func:`~repro.nn.tensor._stable_sigmoid` — so fused and stepwise forward
outputs are identical in float64 (asserted in the test suite), not merely
close.  The only float difference between a big GEMM over ``(T*B, in)``
and per-step GEMMs over ``(B, in)`` would come from BLAS reduction-order
changes, which do not occur for row-partitioned GEMMs (each output row is
an independent dot product); this is also covered by the bit-identity
tests.

``use_sequence_kernels(False)`` switches :class:`~repro.nn.layers.LSTM` /
:class:`~repro.nn.recurrent.GRU` back to the stepwise path — used by the
benchmarks to measure the fused speedup against the reference.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn.tensor import Tensor, _make_node, _stable_sigmoid, is_grad_enabled

__all__ = [
    "lstm_sequence",
    "gru_sequence",
    "use_sequence_kernels",
    "sequence_kernels_enabled",
]

_KERNELS_ENABLED = [True]


def sequence_kernels_enabled() -> bool:
    """Whether LSTM/GRU forward uses the fused kernels (default: yes)."""
    return _KERNELS_ENABLED[0]


@contextmanager
def use_sequence_kernels(enabled: bool):
    """Temporarily enable/disable the fused kernels (benchmark baseline)."""
    previous = _KERNELS_ENABLED[0]
    _KERNELS_ENABLED[0] = bool(enabled)
    try:
        yield
    finally:
        _KERNELS_ENABLED[0] = previous


def _needs_grad(*tensors: Tensor) -> bool:
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


def lstm_sequence(
    sequence: Tensor, weight: Tensor, bias: Tensor, hidden_size: int
) -> Tensor:
    """Run one LSTM layer over ``(T, B, in)`` as a single autograd node.

    ``weight``/``bias`` use :class:`~repro.nn.layers.LSTMCell`'s fused
    layout — ``weight (in+H, 4H)`` over ``[x, h]``, gate order
    ``i, f, g, o`` — and the zero initial state of
    ``LSTMCell.initial_state``.  Returns the hidden outputs ``(T, B, H)``.
    """
    X = sequence.data
    T, B, In = X.shape
    H = int(hidden_size)
    W = weight.data
    b = bias.data
    w_x, w_h = W[:In], W[In:]

    # Input-to-hidden projection for the whole sequence: one GEMM, with
    # the bias folded in by one batched add (elementwise, so every
    # per-step value matches the stepwise `x @ w_x + bias` exactly).
    xw = (X.reshape(T * B, In) @ w_x).reshape(T, B, 4 * H)
    xw += b

    track = _needs_grad(sequence, weight, bias)
    outputs = np.empty((T, B, H), dtype=xw.dtype)
    h = np.zeros((B, H), dtype=xw.dtype)
    c = np.zeros((B, H), dtype=xw.dtype)
    if track:
        sig_gates = np.empty((T, B, 4 * H), dtype=xw.dtype)
        gates_g = np.empty((T, B, H), dtype=xw.dtype)
        tanh_cs = np.empty((T, B, H), dtype=xw.dtype)
        c_prevs = np.empty((T, B, H), dtype=xw.dtype)
        h_prevs = np.empty((T, B, H), dtype=xw.dtype)

    for t in range(T):
        gates = xw[t] + h @ w_h
        # One sigmoid pass over the whole gate block — i, f and o are the
        # columns that matter; the g columns come out wrong-activation and
        # are simply never read (at this scale per-call ufunc overhead
        # outweighs H wasted columns).  Elementwise, so each used column
        # is bit-identical to a per-gate application.
        sig = _stable_sigmoid(gates)
        i = sig[:, 0 * H : 1 * H]
        f = sig[:, 1 * H : 2 * H]
        o = sig[:, 3 * H : 4 * H]
        g = np.tanh(gates[:, 2 * H : 3 * H])
        if track:
            sig_gates[t] = sig
            gates_g[t] = g
            c_prevs[t] = c
            h_prevs[t] = h
        c = f * c + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        if track:
            tanh_cs[t] = tanh_c
        outputs[t] = h

    if not track:
        return Tensor._node(outputs)

    def backward(grad: np.ndarray) -> None:
        # The activation derivatives carry no recurrence — batch them over
        # the whole sequence so the per-step loop only runs the chain
        # recursion (the g columns of sig_d are never read, like sig's).
        sig_d = sig_gates * (1.0 - sig_gates)
        g_d = 1.0 - gates_g**2
        tanh_c_d = 1.0 - tanh_cs**2
        w_h_t = w_h.T
        dh_next = np.zeros((B, H), dtype=outputs.dtype)
        dc_next = np.zeros((B, H), dtype=outputs.dtype)
        d_gates = np.empty((T, B, 4 * H), dtype=outputs.dtype)
        for t in range(T - 1, -1, -1):
            dh = grad[t] + dh_next
            sig = sig_gates[t]
            sd = sig_d[t]
            dc = dh * sig[:, 3 * H : 4 * H] * tanh_c_d[t] + dc_next
            d_gates[t, :, 0 * H : 1 * H] = (dc * gates_g[t]) * sd[:, 0 * H : 1 * H]
            d_gates[t, :, 1 * H : 2 * H] = (dc * c_prevs[t]) * sd[:, 1 * H : 2 * H]
            d_gates[t, :, 2 * H : 3 * H] = (dc * sig[:, 0 * H : 1 * H]) * g_d[t]
            d_gates[t, :, 3 * H : 4 * H] = (dh * tanh_cs[t]) * sd[:, 3 * H : 4 * H]
            dc_next = dc * sig[:, 1 * H : 2 * H]
            dh_next = d_gates[t] @ w_h_t
        d_flat = d_gates.reshape(T * B, 4 * H)
        if weight.requires_grad:
            d_weight = np.empty_like(W)
            d_weight[:In] = X.reshape(T * B, In).T @ d_flat
            d_weight[In:] = h_prevs.reshape(T * B, H).T @ d_flat
            weight._accumulate(d_weight)
        if bias.requires_grad:
            bias._accumulate(d_flat.sum(axis=0, keepdims=True))
        if sequence.requires_grad:
            sequence._accumulate((d_flat @ w_x.T).reshape(T, B, In))

    return _make_node(outputs, (sequence, weight, bias), backward)


def gru_sequence(
    sequence: Tensor,
    gate_weight: Tensor,
    gate_bias: Tensor,
    candidate_weight: Tensor,
    candidate_bias: Tensor,
    hidden_size: int,
) -> Tensor:
    """Run one GRU layer over ``(T, B, in)`` as a single autograd node.

    Weight layout follows :class:`~repro.nn.recurrent.GRUCell`:
    ``gate_weight (in+H, 2H)`` over ``[x, h]`` in gate order ``z, r``,
    ``candidate_weight (in+H, H)`` over ``[x, r*h]``.  Returns the hidden
    outputs ``(T, B, H)``.
    """
    X = sequence.data
    T, B, In = X.shape
    H = int(hidden_size)
    wg, wn = gate_weight.data, candidate_weight.data
    bg, bn = gate_bias.data, candidate_bias.data
    wg_x, wg_h = wg[:In], wg[In:]
    wn_x, wn_h = wn[:In], wn[In:]

    # Both input projections hoisted out of the loop (two GEMMs total),
    # biases folded in by one batched add each — elementwise, so the
    # per-step values match the stepwise `x @ w + bias` exactly.
    x_flat = X.reshape(T * B, In)
    xg = (x_flat @ wg_x).reshape(T, B, 2 * H)
    xg += bg
    xn = (x_flat @ wn_x).reshape(T, B, H)
    xn += bn

    track = _needs_grad(sequence, gate_weight, gate_bias, candidate_weight, candidate_bias)
    outputs = np.empty((T, B, H), dtype=xg.dtype)
    h = np.zeros((B, H), dtype=xg.dtype)
    if track:
        z_r_gates = np.empty((T, B, 2 * H), dtype=xg.dtype)
        cands = np.empty((T, B, H), dtype=xg.dtype)
        h_prevs = np.empty((T, B, H), dtype=xg.dtype)
        r_hs = np.empty((T, B, H), dtype=xg.dtype)

    for t in range(T):
        gates = xg[t] + h @ wg_h
        z_r = _stable_sigmoid(gates)  # z and r in one elementwise pass
        z = z_r[:, :H]
        r = z_r[:, H : 2 * H]
        r_h = r * h
        n = np.tanh(xn[t] + r_h @ wn_h)
        if track:
            z_r_gates[t] = z_r
            cands[t] = n
            h_prevs[t] = h
            r_hs[t] = r_h
        h = (1.0 - z) * n + z * h
        outputs[t] = h

    if not track:
        return Tensor._node(outputs)

    def backward(grad: np.ndarray) -> None:
        # Batched recurrence-free derivatives, as in the LSTM backward.
        sig_d = z_r_gates * (1.0 - z_r_gates)
        n_d = 1.0 - cands**2
        wn_h_t = wn_h.T
        wg_h_t = wg_h.T
        dh_next = np.zeros((B, H), dtype=outputs.dtype)
        d_gates = np.empty((T, B, 2 * H), dtype=outputs.dtype)
        d_npre = np.empty((T, B, H), dtype=outputs.dtype)
        for t in range(T - 1, -1, -1):
            dh = grad[t] + dh_next
            zr = z_r_gates[t]
            z = zr[:, :H]
            h_prev = h_prevs[t]
            dn_pre = (dh * (1.0 - z)) * n_d[t]
            d_npre[t] = dn_pre
            drh = dn_pre @ wn_h_t
            d_gates[t, :, 0:H] = (dh * (h_prev - cands[t])) * sig_d[t, :, :H]
            d_gates[t, :, H : 2 * H] = (drh * h_prev) * sig_d[t, :, H : 2 * H]
            dh_next = dh * z + drh * zr[:, H : 2 * H] + d_gates[t] @ wg_h_t
        dg_flat = d_gates.reshape(T * B, 2 * H)
        dn_flat = d_npre.reshape(T * B, H)
        if gate_weight.requires_grad:
            d_wg = np.empty_like(wg)
            d_wg[:In] = x_flat.T @ dg_flat
            d_wg[In:] = h_prevs.reshape(T * B, H).T @ dg_flat
            gate_weight._accumulate(d_wg)
        if gate_bias.requires_grad:
            gate_bias._accumulate(dg_flat.sum(axis=0, keepdims=True))
        if candidate_weight.requires_grad:
            d_wn = np.empty_like(wn)
            d_wn[:In] = x_flat.T @ dn_flat
            d_wn[In:] = r_hs.reshape(T * B, H).T @ dn_flat
            candidate_weight._accumulate(d_wn)
        if candidate_bias.requires_grad:
            candidate_bias._accumulate(dn_flat.sum(axis=0, keepdims=True))
        if sequence.requires_grad:
            sequence._accumulate(
                (dg_flat @ wg_x.T + dn_flat @ wn_x.T).reshape(T, B, In)
            )

    return _make_node(
        outputs,
        (sequence, gate_weight, gate_bias, candidate_weight, candidate_bias),
        backward,
    )
