"""A from-scratch numpy neural-network framework with reverse-mode autograd.

No deep-learning framework is available in this environment, so the
Info-RNN-GAN of paper §V is built on this package: a :class:`Tensor` with
reverse-mode automatic differentiation, Dense / LSTM / Bi-LSTM layers
(§V-B: "generator G adopts a Bi-LSTM", "discriminator uses a two-layer
Bi-LSTM"), SGD/Adam optimisers and the GAN losses.  Gradients are verified
against numerical differentiation in the test suite (see
:mod:`repro.nn.gradcheck`).
"""

from repro.nn.functional import (
    binary_cross_entropy,
    categorical_cross_entropy,
    log_softmax,
    mse,
    softmax,
    softplus,
)
from repro.nn.fused import (
    gru_sequence,
    lstm_sequence,
    sequence_kernels_enabled,
    use_sequence_kernels,
)
from repro.nn.gradcheck import gradcheck, numerical_gradient
from repro.nn.layers import BiLSTM, Dense, LSTM, LSTMCell, Module, Sequential
from repro.nn.recurrent import BiGRU, GRU, GRUCell, make_birnn
from repro.nn.optim import Adam, Optimizer, Sgd
from repro.nn.serialize import (
    load_module_state_dict,
    load_parameters,
    module_state_dict,
    parameters_equal,
    save_parameters,
)
from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, stack

__all__ = [
    "binary_cross_entropy",
    "categorical_cross_entropy",
    "log_softmax",
    "mse",
    "softmax",
    "softplus",
    "gru_sequence",
    "lstm_sequence",
    "sequence_kernels_enabled",
    "use_sequence_kernels",
    "gradcheck",
    "numerical_gradient",
    "BiLSTM",
    "BiGRU",
    "GRU",
    "GRUCell",
    "make_birnn",
    "Dense",
    "LSTM",
    "LSTMCell",
    "Module",
    "Sequential",
    "Adam",
    "Optimizer",
    "Sgd",
    "save_parameters",
    "load_parameters",
    "parameters_equal",
    "module_state_dict",
    "load_module_state_dict",
    "Tensor",
    "concat",
    "is_grad_enabled",
    "no_grad",
    "stack",
]
