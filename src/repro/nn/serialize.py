"""Parameter save/load for modules (npz-based).

A trained Info-RNN-GAN represents minutes of numpy compute; these helpers
persist any :class:`repro.nn.Module`'s parameters so a pre-trained
predictor can be shipped with an experiment instead of re-trained.

Parameters are addressed positionally: :meth:`Module.parameters` returns
a deterministic order for a fixed architecture (attribute insertion
order), so saving and loading require the *same* architecture and
construction path.  Shape mismatches fail loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "save_parameters",
    "load_parameters",
    "parameters_equal",
    "module_state_dict",
    "load_module_state_dict",
]


def save_parameters(module: Module, path: Union[str, Path]) -> int:
    """Write all parameters to an ``.npz``; returns the parameter count."""
    params = module.parameters()
    if not params:
        raise ValueError("module has no parameters to save")
    arrays = {f"p{i}": p.data for i, p in enumerate(params)}
    np.savez(Path(path), **arrays)
    return len(params)


def load_parameters(module: Module, path: Union[str, Path]) -> int:
    """Load parameters saved by :func:`save_parameters` (in place).

    The module must have the same architecture (same number of parameters
    with the same shapes, in the same order); returns the count loaded.
    """
    params = module.parameters()
    with np.load(Path(path)) as archive:
        names = [f"p{i}" for i in range(len(archive.files))]
        if len(names) != len(params):
            raise ValueError(
                f"archive holds {len(names)} parameters, module has "
                f"{len(params)} — architecture mismatch"
            )
        for index, (param, name) in enumerate(zip(params, names)):
            stored = archive[name]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: archive "
                    f"{stored.shape} vs module {param.data.shape}"
                )
            param.data = stored.copy()
    return len(params)


def module_state_dict(module: Module) -> Dict[str, np.ndarray]:
    """In-memory parameter snapshot using the same positional addressing
    (``p{i}``) as :func:`save_parameters` — the checkpoint subsystem's
    building block for embedding module weights in larger state trees."""
    return {f"p{i}": p.data.copy() for i, p in enumerate(module.parameters())}


def load_module_state_dict(module: Module, state: Dict[str, np.ndarray]) -> int:
    """Restore :func:`module_state_dict` output (in place); returns count.

    Same architecture contract as :func:`load_parameters`: parameter
    count and per-parameter shapes must match.
    """
    params = module.parameters()
    if len(state) != len(params):
        raise ValueError(
            f"state holds {len(state)} parameters, module has "
            f"{len(params)} — architecture mismatch"
        )
    for index, param in enumerate(params):
        stored = np.asarray(state[f"p{index}"])
        if stored.shape != param.data.shape:
            raise ValueError(
                f"parameter {index} shape mismatch: state "
                f"{stored.shape} vs module {param.data.shape}"
            )
        param.data = stored.astype(param.data.dtype, copy=True)
    return len(params)


def parameters_equal(a: Module, b: Module) -> bool:
    """True when two same-architecture modules hold identical parameters."""
    pa, pb = a.parameters(), b.parameters()
    if len(pa) != len(pb):
        return False
    return all(
        x.data.shape == y.data.shape and np.array_equal(x.data, y.data)
        for x, y in zip(pa, pb)
    )
