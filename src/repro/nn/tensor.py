"""Reverse-mode autograd over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order, accumulating gradients into every tensor created with
``requires_grad=True``.  Broadcasting is fully supported: gradients are
summed back over broadcast dimensions (:func:`_unbroadcast`).

The op set is the minimum closed set needed to express Dense layers, LSTM
cells, softmax heads and the GAN losses — everything else in
:mod:`repro.nn` is built from these primitives, which is what makes the
numerical gradient checks in the test suite meaningful.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "concat", "stack"]

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after numpy broadcasting."""
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An autograd-tracked numpy array.

    Only float data participates in differentiation; construction coerces
    to ``float64`` (small models, exact gradcheck beats speed here).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """The scalar value; raises for non-scalars."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error() -> float:
        raise ValueError("item() only works on single-element tensors")

    def numpy(self) -> np.ndarray:
        """A copy of the underlying array (detached)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Reverse topological order over the graph reachable from self.
        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in seen:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear this tensor's accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError(
                "matmul requires operands with ndim >= 2 "
                "(reshape vectors to (1, n) / (n, 1) first)"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shaping
    # ------------------------------------------------------------------ #

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, None))),
            np.exp(np.clip(self.data, None, 500))
            / (1.0 + np.exp(np.clip(self.data, None, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def clip_min(self, low: float) -> "Tensor":
        """Clamp below at ``low`` (gradient passes only where unclipped)."""
        mask = self.data > low
        out_data = np.maximum(self.data, low)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (used to merge Bi-LSTM directions)."""
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index: List[slice] = [slice(None)] * grad.ndim
            index[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(index)])

    out = Tensor(out_data)
    if any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (used to collect LSTM timesteps)."""
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    out = Tensor(out_data)
    if any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._backward = backward
    return out
