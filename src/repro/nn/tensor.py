"""Reverse-mode autograd over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order, accumulating gradients into every tensor created with
``requires_grad=True``.  Broadcasting is fully supported: gradients are
summed back over broadcast dimensions (:func:`_unbroadcast`).

The op set is the minimum closed set needed to express Dense layers, LSTM
cells, softmax heads and the GAN losses — everything else in
:mod:`repro.nn` is built from these primitives, which is what makes the
numerical gradient checks in the test suite meaningful.

Fast-execution machinery (the per-op semantics are unchanged):

* :class:`no_grad` — a context manager under which no graph is recorded
  at all: results carry no ``_parents``/``_backward``/tape, so inference
  costs exactly the numpy forward work.
* **Tape-ordered backward** — every graph-producing op appends its result
  to a creation-order tape shared through its parents (two tapes are
  merged when an op first connects them).  Creation order *is* a
  topological order, so :meth:`Tensor.backward` replays the tape in
  reverse instead of re-deriving the ordering with a graph search on
  every call.
* **Gradient-buffer reuse** — each tensor owns one persistent gradient
  buffer; accumulation writes ``+=`` into it and :meth:`zero_grad` only
  drops the ``grad`` reference (the buffer is kept and overwritten by the
  first accumulation of the next backward), eliminating the per-step
  ``grad + grad`` allocations.

Dtype: construction coerces non-float data to ``float64``; ``float32``
and ``float64`` arrays keep their dtype so a converted module (see
``Module.astype``) runs end-to-end in ``float32``.  Python scalars are
lifted to the other operand's dtype, so ``x * 0.5`` never silently
promotes a ``float32`` graph.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs

__all__ = ["Tensor", "concat", "stack", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

# Module-level grad mode: flipped (only) by the `no_grad` context manager.
_GRAD_ENABLED = True

# Monotonic backward-pass counter; tensors stamp it on accumulation so one
# backward never re-fires nodes left over from an earlier backward on a
# shared tape (see Tensor.backward).
_EPOCH = [0]


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


class no_grad:
    """Context manager disabling graph construction entirely.

    Inside the block every op returns a plain constant tensor: no
    parents, no backward closure, no tape membership.  Used by the
    GAN inference paths (``InfoRnnGan.generate``,
    ``GanDemandPredictor.predict_next``, discriminator-only evaluation),
    where the seed implementation recorded a full backward graph it never
    used.  Re-entrant; restores the previous mode on exit.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after numpy broadcasting."""
    # Sum leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic, shared by the op and the fused kernels.

    The fused sequence kernels (:mod:`repro.nn.fused`) must reproduce the
    stepwise activations *bit for bit*, so there is exactly one sigmoid
    implementation in the package.
    """
    # One exp over exp(-|x|) covers both branches exactly: for x >= 0 the
    # selected value is 1/(1+exp(-x)) and for x < 0 it is
    # exp(x)/(1+exp(x)), with -|x| equal to -x resp. x in each branch.
    ex = np.exp(-np.abs(x))
    denominator = 1.0 + ex
    return np.where(x >= 0, 1.0 / denominator, ex / denominator)


class Tensor:
    """An autograd-tracked numpy array.

    Only float data participates in differentiation; construction coerces
    non-float input to ``float64`` (small models, exact gradcheck beats
    speed here) while ``float32``/``float64`` arrays keep their dtype.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_buffer",
        "_tape",
        "_visit",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ):
        if dtype is not None:
            self.data = np.asarray(data, dtype=dtype)
        elif isinstance(data, np.ndarray) and data.dtype in _FLOAT_DTYPES:
            self.data = data
        else:
            self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._grad_buffer: Optional[np.ndarray] = None
        self._tape: Optional[List["Tensor"]] = None
        self._visit = 0

    @classmethod
    def _node(cls, data: np.ndarray) -> "Tensor":
        """Fast constructor for op results (already-validated float arrays)."""
        out = cls.__new__(cls)
        out.data = data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out._grad_buffer = None
        out._tape = None
        out._visit = 0
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """The scalar value; raises for non-scalars."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error() -> float:
        raise ValueError("item() only works on single-element tensors")

    def numpy(self) -> np.ndarray:
        """A copy of the underlying array (detached)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A new tensor outside the graph, **sharing** the same array.

        The share is unconditional: ``t.detach().data is t.data`` always
        holds (no dtype round-trip through ``np.asarray`` that could
        silently copy), so detaching activations on the no-grad path is
        free.  Mutating the data of either tensor is visible in both —
        call :meth:`numpy` for an independent copy.
        """
        return Tensor._node(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #

    def _lift(self, value: ArrayLike) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        if isinstance(value, (int, float)):
            # Match the operand's dtype: a strong float64 0-d array would
            # promote a float32 graph under NEP 50 semantics.
            return Tensor._node(np.asarray(value, dtype=self.data.dtype))
        return Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        return _make_node(data, parents, backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        self._visit = _EPOCH[0]
        buffer = self._grad_buffer
        if buffer is None or buffer.shape != self.data.shape or buffer.dtype != self.data.dtype:
            buffer = self._grad_buffer = np.empty_like(self.data)
        if self.grad is None:
            # First accumulation since zero_grad: overwrite the (stale)
            # buffer contents in place instead of allocating a copy.
            np.copyto(buffer, grad)
            self.grad = buffer
        elif self.grad is buffer:
            buffer += grad
        else:
            # The caller installed a foreign array as .grad; preserve the
            # old out-of-place semantics for it.
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit output gradient.  The walk replays the creation-order
        tape in reverse from this tensor's position — creation order is a
        topological order, so no per-call graph search is needed.  Nodes
        are only fired if they accumulated a gradient *during this call*
        (epoch stamp), which keeps repeated backwards over shared tapes
        exactly equivalent to the old reachability-based walk.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        _EPOCH[0] += 1
        epoch = _EPOCH[0]
        self._accumulate(grad)
        tape = self._tape
        if tape is None:
            return
        with obs.span("nn.backward"):
            position = len(tape) - 1
            while tape[position] is not self:
                position -= 1
            for index in range(position, -1, -1):
                node = tape[index]
                if (
                    node._visit == epoch
                    and node._backward is not None
                    and node.grad is not None
                ):
                    node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear this tensor's accumulated gradient.

        Only the ``grad`` reference is dropped; the owned buffer is kept
        and overwritten by the next accumulation (optimizers rely on
        ``grad is None`` to skip untouched parameters).
        """
        self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError(
                "matmul requires operands with ndim >= 2 "
                "(reshape vectors to (1, n) / (n, 1) first)"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shaping
    # ------------------------------------------------------------------ #

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def flip(self, axis: int = 0) -> "Tensor":
        """Reverse along ``axis`` (time reversal of the backward RNN pass)."""
        index = [slice(None)] * self.data.ndim
        index[axis] = slice(None, None, -1)
        index = tuple(index)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[index])

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def clip_min(self, low: float) -> "Tensor":
        """Clamp below at ``low`` (gradient passes only where unclipped)."""
        mask = self.data > low
        out_data = np.maximum(self.data, low)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)


def _make_node(
    data: np.ndarray,
    parents: Tuple[Tensor, ...],
    backward: Callable[[np.ndarray], None],
) -> Tensor:
    """Create an op-result node, wiring it into the graph and tape.

    Under :class:`no_grad` — or when no parent requires a gradient — the
    result is a plain constant tensor.  Otherwise the node joins the tape
    shared through its parents; two distinct tapes can have no cross
    edges (the op connecting them is by definition the first such edge),
    so merging by concatenation preserves topological order.
    """
    out = Tensor._node(data)
    if not _GRAD_ENABLED or not any(p.requires_grad for p in parents):
        return out
    tape: Optional[List[Tensor]] = None
    for parent in parents:
        parent_tape = parent._tape
        if parent_tape is None or parent_tape is tape:
            continue
        if tape is None:
            tape = parent_tape
        else:
            for node in parent_tape:
                node._tape = tape
            tape.extend(parent_tape)
    if tape is None:
        tape = []
    out.requires_grad = True
    out._parents = parents
    out._backward = backward
    out._tape = tape
    tape.append(out)
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (used to merge Bi-LSTM directions)."""
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    tensors = tuple(tensors)
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index: List[slice] = [slice(None)] * grad.ndim
            index[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(index)])

    return _make_node(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (used to collect LSTM timesteps)."""
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    tensors = tuple(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return _make_node(out_data, tensors, backward)
