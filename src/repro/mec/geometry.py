"""Planar geometry for base-station placement and user coverage.

Base stations and users live on a 2-D plane measured in metres.  Coverage is
the paper's disk model: a user is covered by `bs_i` when it is within the
transmission radius of `bs_i` (15 m femto, 30 m micro, 100 m macro,
§VI-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Point", "distance", "points_within", "random_point_in_disk"]


@dataclass(frozen=True)
class Point:
    """A point on the deployment plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def points_within(center: Point, radius: float, candidates: Sequence[Point]) -> List[int]:
    """Indices of ``candidates`` lying within ``radius`` metres of ``center``.

    This is the disk coverage test used to decide which base stations cover
    a user (and, for Pri_GD, how many base stations cover each user).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if not candidates:
        return []
    xs = np.array([p.x for p in candidates])
    ys = np.array([p.y for p in candidates])
    d2 = (xs - center.x) ** 2 + (ys - center.y) ** 2
    return [int(i) for i in np.nonzero(d2 <= radius * radius)[0]]


def random_point_in_disk(center: Point, radius: float, rng: np.random.Generator) -> Point:
    """Sample a uniform random point inside the disk of ``radius`` at ``center``.

    Used to scatter micro/femto base stations inside the macro cell and to
    drop users near hotspots.  Sampling ``r = radius * sqrt(u)`` gives an
    area-uniform distribution (plain ``radius * u`` would cluster points at
    the centre).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    theta = rng.uniform(0.0, 2.0 * math.pi)
    r = radius * math.sqrt(rng.uniform(0.0, 1.0))
    return Point(center.x + r * math.cos(theta), center.y + r * math.sin(theta))
