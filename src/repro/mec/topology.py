"""Network topologies: GT-ITM-style synthetic graphs and an AS1755 stand-in.

The paper generates synthetic topologies with GT-ITM [11], connecting each
pair of base stations with probability 0.1, and additionally evaluates on
the "real network AS1755" (the Rocketfuel-measured EBONE backbone).  GT-ITM
itself is an old C tool; its *flat random* model is an Erdős–Rényi /
Waxman-style generator, which :func:`gtitm_topology` reproduces exactly at
the paper's 0.1 link probability.  :func:`transit_stub_topology` implements
GT-ITM's hierarchical transit-stub model for users who want the richer
structure.  :func:`as1755_topology` deterministically synthesises a graph
with AS1755's published scale (87 routers, ~161 links) and a heavy-tailed
degree distribution, which produces the bottleneck links the paper credits
for the wider algorithm gap in Fig. 5 (see DESIGN.md §2 for the
substitution rationale).

All generators return a ``networkx.Graph`` whose nodes are integers
``0..n-1`` and whose edges carry a ``delay_ms`` attribute (link propagation
delay) and a ``bandwidth_mbps`` attribute.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.mec.basestation import TIER_PROFILES, BaseStation, BaseStationTier
from repro.mec.geometry import Point, random_point_in_disk
from repro.utils.validation import require_positive, require_probability

__all__ = [
    "gtitm_topology",
    "transit_stub_topology",
    "as1755_topology",
    "as3967_topology",
    "place_base_stations",
    "AS1755_NODE_COUNT",
    "AS1755_EDGE_COUNT",
    "AS3967_NODE_COUNT",
    "AS3967_EDGE_COUNT",
]

# Published Rocketfuel scale for AS1755 (EBONE, Europe): 87 routers / 161 links.
AS1755_NODE_COUNT = 87
AS1755_EDGE_COUNT = 161
# Published Rocketfuel scale for AS3967 (Exodus, US): 79 routers / 147 links.
AS3967_NODE_COUNT = 79
AS3967_EDGE_COUNT = 147

_DEFAULT_LINK_PROBABILITY = 0.1
_LINK_DELAY_RANGE_MS = (0.5, 3.0)
_LINK_BANDWIDTH_RANGE_MBPS = (200.0, 1000.0)


def _ensure_connected(graph: nx.Graph, rng: np.random.Generator) -> None:
    """Connect components by adding one random edge between each pair.

    GT-ITM retries until connected; adding bridge edges is equivalent for
    our purposes and keeps generation deterministic in the number of draws.
    """
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        a = components[0][int(rng.integers(len(components[0])))]
        b = components[1][int(rng.integers(len(components[1])))]
        graph.add_edge(a, b)
        components = [list(c) for c in nx.connected_components(graph)]


def _assign_link_attributes(
    graph: nx.Graph,
    rng: np.random.Generator,
    delay_range_ms: Sequence[float] = _LINK_DELAY_RANGE_MS,
    bandwidth_range_mbps: Sequence[float] = _LINK_BANDWIDTH_RANGE_MBPS,
) -> None:
    """Attach uniform-random ``delay_ms`` / ``bandwidth_mbps`` to every edge."""
    lo_d, hi_d = delay_range_ms
    lo_b, hi_b = bandwidth_range_mbps
    for u, v in graph.edges:
        graph.edges[u, v]["delay_ms"] = float(rng.uniform(lo_d, hi_d))
        graph.edges[u, v]["bandwidth_mbps"] = float(rng.uniform(lo_b, hi_b))


def gtitm_topology(
    n: int,
    rng: np.random.Generator,
    link_probability: float = _DEFAULT_LINK_PROBABILITY,
) -> nx.Graph:
    """GT-ITM flat random topology: each pair connected with ``link_probability``.

    This is exactly the model the paper states for its synthetic networks
    ("each pair of base station has a probability of 0.1 of being
    connected").  The graph is forced connected by bridging components.
    """
    require_positive("n", n)
    require_probability("link_probability", link_probability)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u, v in itertools.combinations(range(n), 2):
        if rng.uniform() < link_probability:
            graph.add_edge(u, v)
    _ensure_connected(graph, rng)
    _assign_link_attributes(graph, rng)
    return graph


def transit_stub_topology(
    transit_domains: int,
    transit_size: int,
    stubs_per_transit: int,
    stub_size: int,
    rng: np.random.Generator,
    intra_probability: float = 0.6,
) -> nx.Graph:
    """GT-ITM transit-stub hierarchical topology.

    ``transit_domains`` densely-connected cores; each transit node hangs
    ``stubs_per_transit`` stub domains of ``stub_size`` nodes.  Stub domains
    attach to their transit node through a single gateway edge, which is
    what creates realistic bottlenecks.
    """
    for name, value in [
        ("transit_domains", transit_domains),
        ("transit_size", transit_size),
        ("stubs_per_transit", stubs_per_transit),
        ("stub_size", stub_size),
    ]:
        require_positive(name, value)
    require_probability("intra_probability", intra_probability)

    graph = nx.Graph()
    next_node = 0

    def _new_nodes(count: int) -> List[int]:
        nonlocal next_node
        nodes = list(range(next_node, next_node + count))
        next_node += count
        graph.add_nodes_from(nodes)
        return nodes

    def _dense_subgraph(nodes: List[int]) -> None:
        for u, v in itertools.combinations(nodes, 2):
            if rng.uniform() < intra_probability:
                graph.add_edge(u, v)
        sub = graph.subgraph(nodes).copy()
        if len(nodes) > 1 and not nx.is_connected(sub):
            _ensure_connected_within(nodes)

    def _ensure_connected_within(nodes: List[int]) -> None:
        sub = graph.subgraph(nodes)
        comps = [list(c) for c in nx.connected_components(sub)]
        while len(comps) > 1:
            graph.add_edge(comps[0][0], comps[1][0])
            comps = [list(c) for c in nx.connected_components(graph.subgraph(nodes))]

    transit_nodes_by_domain: List[List[int]] = []
    for _ in range(transit_domains):
        nodes = _new_nodes(transit_size)
        _dense_subgraph(nodes)
        transit_nodes_by_domain.append(nodes)

    # Ring between transit domains (plus the dense intra-domain mesh).
    for i in range(len(transit_nodes_by_domain)):
        a = transit_nodes_by_domain[i][0]
        b = transit_nodes_by_domain[(i + 1) % len(transit_nodes_by_domain)][0]
        if a != b:
            graph.add_edge(a, b)

    for domain in transit_nodes_by_domain:
        for transit_node in domain:
            for _ in range(stubs_per_transit):
                stub_nodes = _new_nodes(stub_size)
                _dense_subgraph(stub_nodes)
                gateway = stub_nodes[int(rng.integers(len(stub_nodes)))]
                graph.add_edge(transit_node, gateway)

    _ensure_connected(graph, rng)
    _assign_link_attributes(graph, rng)
    return graph


def _rocketfuel_like(
    n_nodes: int,
    n_edges: int,
    seed: int,
    rng: Optional[np.random.Generator],
) -> nx.Graph:
    """Synthesise a Rocketfuel-scale backbone (see DESIGN.md §2).

    A preferential-attachment tree gives the power-law hub structure;
    degree-weighted chords then thicken it to the published link count.
    Link delays are drawn with *higher variance* than the synthetic model
    and scale with endpoint degree — hub-adjacent links are the
    bottlenecks.
    """
    local_rng = rng if rng is not None else np.random.default_rng(seed)
    graph = nx.barabasi_albert_graph(n_nodes, 1, seed=seed)
    existing = set(map(frozenset, graph.edges))
    while graph.number_of_edges() < n_edges:
        degrees = np.array([graph.degree(i) for i in range(n_nodes)], dtype=float)
        weights = degrees / degrees.sum()
        u = int(local_rng.choice(n_nodes, p=weights))
        v = int(local_rng.integers(n_nodes))
        if u == v or frozenset((u, v)) in existing:
            continue
        graph.add_edge(u, v)
        existing.add(frozenset((u, v)))
    degrees = dict(graph.degree())
    max_degree = max(degrees.values())
    for u, v in graph.edges:
        congestion = (degrees[u] + degrees[v]) / (2.0 * max_degree)
        base = float(local_rng.uniform(0.5, 2.0))
        graph.edges[u, v]["delay_ms"] = base * (1.0 + 4.0 * congestion)
        graph.edges[u, v]["bandwidth_mbps"] = float(local_rng.uniform(100.0, 600.0))
    return graph


def as1755_topology(rng: Optional[np.random.Generator] = None) -> nx.Graph:
    """Deterministic AS1755-scale topology (87 routers, 161 links).

    Rocketfuel's AS1755 (EBONE) backbone has a heavy-tailed degree
    distribution — a few high-degree hubs carrying most paths; this
    synthesis reproduces the published scale and that hub structure,
    which is what creates the bottleneck links the paper credits for
    Fig. 5's wider gap.

    The graph is identical on every call with the default RNG (fixed
    seed); pass ``rng`` only to get randomised variants for robustness
    testing.
    """
    return _rocketfuel_like(AS1755_NODE_COUNT, AS1755_EDGE_COUNT, 1755, rng)


def as3967_topology(rng: Optional[np.random.Generator] = None) -> nx.Graph:
    """Deterministic AS3967-scale topology (79 routers, 147 links).

    A second Rocketfuel backbone (Exodus, US) beyond the paper's AS1755 —
    used for robustness checks that the Fig. 5 conclusions are not an
    artifact of one real topology.
    """
    return _rocketfuel_like(AS3967_NODE_COUNT, AS3967_EDGE_COUNT, 3967, rng)


def place_base_stations(
    graph: nx.Graph,
    rng: np.random.Generator,
    macro_fraction: float = 0.1,
    micro_fraction: float = 0.3,
    field_size_m: float = 1000.0,
    anchor_points: Optional[Sequence["Point"]] = None,
) -> List[BaseStation]:
    """Instantiate one :class:`BaseStation` per topology node.

    Mirrors §VI-A's deployment: macro stations sit on a coarse grid across
    the field (the paper deploys "the macro base station in the center"
    of each region), and micro/femto stations are scattered inside the
    coverage disk of their nearest macro station.  Tier capacities and
    bandwidths are drawn from :data:`TIER_PROFILES` bands.

    ``anchor_points`` (typically user hotspots) pull the small cells: when
    given, each micro/femto station is dropped near a random anchor instead
    of a random macro — operators deploy small cells where the traffic is,
    and this is what puts fast femtocells inside users' coverage disks.
    """
    require_probability("macro_fraction", macro_fraction)
    require_probability("micro_fraction", micro_fraction)
    if macro_fraction + micro_fraction > 1.0:
        raise ValueError("macro_fraction + micro_fraction must not exceed 1")
    require_positive("field_size_m", field_size_m)

    n = graph.number_of_nodes()
    n_macro = max(1, round(n * macro_fraction))
    n_micro = round(n * micro_fraction)
    tiers = (
        [BaseStationTier.MACRO] * n_macro
        + [BaseStationTier.MICRO] * n_micro
        + [BaseStationTier.FEMTO] * (n - n_macro - n_micro)
    )

    # Macro stations on a jittered grid so the whole field is covered.
    grid = max(1, math.ceil(math.sqrt(n_macro)))
    cell = field_size_m / grid
    macro_positions: List[Point] = []
    for i in range(n_macro):
        gx, gy = i % grid, i // grid
        cx = (gx + 0.5) * cell + rng.uniform(-0.1, 0.1) * cell
        cy = (gy + 0.5) * cell + rng.uniform(-0.1, 0.1) * cell
        macro_positions.append(Point(cx, cy))

    stations: List[BaseStation] = []
    for index in range(n):
        tier = tiers[index]
        profile = TIER_PROFILES[tier]
        if tier is BaseStationTier.MACRO:
            position = macro_positions[index]
        elif anchor_points:
            anchor = anchor_points[int(rng.integers(len(anchor_points)))]
            spread = 2.0 * profile.radius_m  # near, not on top of, the anchor
            position = random_point_in_disk(anchor, spread, rng)
        else:
            anchor = macro_positions[int(rng.integers(n_macro))]
            macro_radius = TIER_PROFILES[BaseStationTier.MACRO].radius_m
            position = random_point_in_disk(anchor, macro_radius, rng)
        stations.append(
            BaseStation(
                index=index,
                tier=tier,
                position=position,
                capacity_mhz=profile.sample_capacity(rng),
                bandwidth_mbps=profile.sample_bandwidth(rng),
            )
        )
    return stations
