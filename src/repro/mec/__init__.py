"""MEC network substrate: topology, base stations, radio, services, delays.

This package models the 5G heterogeneous MEC network `G = (BS, E)` of paper
§III-A: a set of macro / micro / femto base stations, each attached to a
cloudlet with a computing capacity, interconnected by a topology generated
GT-ITM-style (or the AS1755-like "real" topology for Fig. 5/7), with
per-base-station unit-data processing-delay random processes `d_i(t)`.
"""

from repro.mec.basestation import BaseStation, BaseStationTier, TierProfile, TIER_PROFILES
from repro.mec.delay import DelayObservation, DelayProcess, UniformTierDelay, DriftingDelay
from repro.mec.geometry import Point, distance, points_within
from repro.mec.datacenter import RemoteDataCenter, cloud_only_delay_ms
from repro.mec.network import MECNetwork
from repro.mec.paths import BackhaulPaths, access_station
from repro.mec.registry import (
    TOPOLOGIES,
    TopologyFactory,
    make_topology,
    register_topology,
    topology_names,
)
from repro.mec.radio import RadioConfig, path_loss_db, receive_power_w, link_rate_mbps
from repro.mec.requests import Request
from repro.mec.services import Service, ServiceCatalog
from repro.mec.topology import (
    as1755_topology,
    as3967_topology,
    gtitm_topology,
    transit_stub_topology,
    place_base_stations,
)

__all__ = [
    "BaseStation",
    "BaseStationTier",
    "TierProfile",
    "TIER_PROFILES",
    "DelayObservation",
    "DelayProcess",
    "UniformTierDelay",
    "DriftingDelay",
    "Point",
    "distance",
    "points_within",
    "MECNetwork",
    "RemoteDataCenter",
    "cloud_only_delay_ms",
    "BackhaulPaths",
    "access_station",
    "RadioConfig",
    "path_loss_db",
    "receive_power_w",
    "link_rate_mbps",
    "Request",
    "Service",
    "ServiceCatalog",
    "TOPOLOGIES",
    "TopologyFactory",
    "make_topology",
    "register_topology",
    "topology_names",
    "as1755_topology",
    "as3967_topology",
    "gtitm_topology",
    "transit_stub_topology",
    "place_base_stations",
]
