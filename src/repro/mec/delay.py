"""Per-base-station processing-delay random processes `d_i(t)` (§III-D).

`d_i(t)` is the delay of processing one unit (MB) of data at `bs_i` in slot
`t`.  It "varies in different time slots and is usually not known in
advance", but is fixed within a slot and observable at the start of a slot
*for the stations actually played* — which is exactly the bandit feedback
model of Algorithm 1.

Two concrete processes are provided:

* :class:`UniformTierDelay` — the paper's §VI-A model: each station draws a
  fixed mean from its tier band (macro 30-50 ms, micro 10-20 ms, femto
  5-10 ms) and the per-slot delay fluctuates around that mean.  An optional
  ``congestion`` vector scales station means, used for AS1755's
  bottleneck-heavy topology.
* :class:`DriftingDelay` — a non-stationary extension in which station
  means drift with a random walk; used by the ablation benchmarks to probe
  the learning algorithms beyond the paper's stationary setting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mec.basestation import BaseStation
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["DelayObservation", "DelayProcess", "UniformTierDelay", "DriftingDelay"]


@dataclass(frozen=True)
class DelayObservation:
    """A single bandit observation: station ``i`` showed delay ``d_i(t)``."""

    station_index: int
    slot: int
    unit_delay_ms: float


class DelayProcess(abc.ABC):
    """Abstract per-slot unit-delay process over all base stations."""

    @property
    @abc.abstractmethod
    def n_stations(self) -> int:
        """Number of stations the process covers."""

    @abc.abstractmethod
    def sample(self, slot: int) -> np.ndarray:
        """Realised `d_i(t)` for every station in ``slot`` (ms/MB).

        Repeated calls with the same ``slot`` must return the same vector —
        the delay "does not change during time slot t" (§III-D).
        """

    @property
    @abc.abstractmethod
    def true_means(self) -> np.ndarray:
        """The latent `theta_i = E[X_i]` per station (for regret accounting)."""

    @property
    @abc.abstractmethod
    def bounds(self) -> "tuple[float, float]":
        """`(d_min, d_max)` over all stations and slots (known a priori, Lemma 1)."""


class UniformTierDelay(DelayProcess):
    """Stationary delays: per-station mean from the tier band + slot noise.

    ``noise_fraction`` controls the fluctuation amplitude: the slot delay is
    uniform in ``[mean * (1-f), mean * (1+f)]``.  ``congestion`` (one factor
    per station, >= 1) models topology bottlenecks — a station adjacent to
    a hub link processes/forwards slower.
    """

    def __init__(
        self,
        stations: Sequence[BaseStation],
        rng: np.random.Generator,
        noise_fraction: float = 0.25,
        congestion: Optional[Sequence[float]] = None,
    ):
        if not stations:
            raise ValueError("need at least one base station")
        require_non_negative("noise_fraction", noise_fraction)
        if noise_fraction >= 1.0:
            raise ValueError("noise_fraction must be < 1 so delays stay positive")
        self._noise_fraction = float(noise_fraction)
        means: List[float] = []
        for bs in stations:
            lo, hi = bs.profile.unit_delay_ms
            means.append(float(rng.uniform(lo, hi)))
        self._means = np.asarray(means, dtype=float)
        # Per-slot noise comes from slot-keyed substreams, so the realised
        # d_i(t) is independent of the order in which slots are queried.
        self._noise_seed = int(rng.integers(2**63 - 1))
        if congestion is not None:
            factors = np.asarray(list(congestion), dtype=float)
            if factors.shape != self._means.shape:
                raise ValueError(
                    f"congestion must have one factor per station "
                    f"({self._means.shape[0]}), got shape {factors.shape}"
                )
            if np.any(factors < 1.0):
                raise ValueError("congestion factors must be >= 1")
            self._means = self._means * factors
        self._cache: dict = {}

    @property
    def n_stations(self) -> int:
        return int(self._means.shape[0])

    def sample(self, slot: int) -> np.ndarray:
        require_non_negative("slot", slot)
        if slot not in self._cache:
            f = self._noise_fraction
            slot_rng = np.random.default_rng((self._noise_seed, int(slot)))
            noise = slot_rng.uniform(1.0 - f, 1.0 + f, size=self._means.shape)
            self._cache[slot] = self._means * noise
        return self._cache[slot].copy()

    @property
    def true_means(self) -> np.ndarray:
        return self._means.copy()

    @property
    def bounds(self) -> "tuple[float, float]":
        f = self._noise_fraction
        return (float(self._means.min() * (1.0 - f)), float(self._means.max() * (1.0 + f)))


class DriftingDelay(DelayProcess):
    """Non-stationary delays: station means follow a clipped random walk.

    Extension beyond the paper (used in ablations): the mean of each
    station's process drifts by a Gaussian step of scale ``drift_ms`` every
    slot, clipped to ``[mean_floor_ms, mean_ceil_ms]``.  `true_means`
    reports the *initial* means, matching how a stationary learner would be
    evaluated against a drifting world.
    """

    def __init__(
        self,
        stations: Sequence[BaseStation],
        rng: np.random.Generator,
        drift_ms: float = 0.5,
        noise_fraction: float = 0.25,
        mean_floor_ms: float = 1.0,
        mean_ceil_ms: Optional[float] = None,
        congestion: Optional[Sequence[float]] = None,
    ):
        if not stations:
            raise ValueError("need at least one base station")
        require_non_negative("drift_ms", drift_ms)
        require_non_negative("noise_fraction", noise_fraction)
        require_positive("mean_floor_ms", mean_floor_ms)
        self._drift = float(drift_ms)
        self._noise_fraction = float(noise_fraction)
        self._floor = float(mean_floor_ms)
        initial: List[float] = []
        for bs in stations:
            lo, hi = bs.profile.unit_delay_ms
            initial.append(float(rng.uniform(lo, hi)))
        self._initial_means = np.asarray(initial, dtype=float)
        if congestion is not None:
            factors = np.asarray(list(congestion), dtype=float)
            if factors.shape != self._initial_means.shape:
                raise ValueError(
                    f"congestion must have one factor per station "
                    f"({self._initial_means.shape[0]}), got shape {factors.shape}"
                )
            if np.any(factors < 1.0):
                raise ValueError("congestion factors must be >= 1")
            self._initial_means = self._initial_means * factors
        if mean_ceil_ms is None:
            # Leave the walk head-room above the (possibly congested) start.
            mean_ceil_ms = max(80.0, 1.5 * float(self._initial_means.max()))
        require_positive("mean_ceil_ms", mean_ceil_ms)
        if mean_floor_ms >= mean_ceil_ms:
            raise ValueError("mean_floor_ms must be below mean_ceil_ms")
        self._ceil = float(mean_ceil_ms)
        # Slot-keyed substreams make sampling order-independent: both the
        # walk step of slot t and its observation noise are functions of
        # (seed, t) only.
        self._walk_seed = int(rng.integers(2**63 - 1))
        self._noise_seed = int(rng.integers(2**63 - 1))
        self._mean_cache: dict = {0: self._initial_means.copy()}
        self._cache: dict = {}

    @property
    def n_stations(self) -> int:
        return int(self._initial_means.shape[0])

    def _means_at(self, slot: int) -> np.ndarray:
        """The walk's mean vector at ``slot``, computed (and cached) recursively."""
        if slot not in self._mean_cache:
            known = max(s for s in self._mean_cache if s <= slot)
            means = self._mean_cache[known]
            for t in range(known + 1, slot + 1):
                step_rng = np.random.default_rng((self._walk_seed, t))
                steps = step_rng.normal(0.0, self._drift, size=means.shape)
                means = np.clip(means + steps, self._floor, self._ceil)
                self._mean_cache[t] = means
        return self._mean_cache[slot]

    def sample(self, slot: int) -> np.ndarray:
        require_non_negative("slot", slot)
        if slot not in self._cache:
            means = self._means_at(slot)
            f = self._noise_fraction
            noise_rng = np.random.default_rng((self._noise_seed, int(slot)))
            noise = noise_rng.uniform(1.0 - f, 1.0 + f, size=means.shape)
            self._cache[slot] = means * noise
        return self._cache[slot].copy()

    @property
    def true_means(self) -> np.ndarray:
        return self._initial_means.copy()

    @property
    def bounds(self) -> "tuple[float, float]":
        f = self._noise_fraction
        return (self._floor * (1.0 - f), self._ceil * (1.0 + f))
