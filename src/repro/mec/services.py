"""Services to be cached and their instantiation delays `d_ins[i,k]`.

Paper §III-C: a set `S` of resource-hungry services (VR, cloud gaming, IoT
analytics) originally deployed in remote data centers; caching an instance
of `S_k` at `bs_i` pays a known, constant instantiation delay
`d_ins[i,k]` (VM/container startup) that differs per (station, service)
pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["Service", "ServiceCatalog"]

_DEFAULT_INSTANTIATION_RANGE_MS = (2.0, 10.0)


@dataclass(frozen=True)
class Service:
    """A network service `S_k`.

    Attributes
    ----------
    index:
        Position in the catalog (the `k` of `S_k`).
    name:
        Human-readable label used in traces and examples.
    image_size_mb:
        Container/VM image size; drives realistic instantiation delays.
    compute_per_unit_mhz:
        Service-specific multiplier on the network-wide ``C_unit``.
        The paper's model (and every shipped controller) uses the single
        shared ``C_unit`` constant, so this field stays at its default of
        1.0 there; it is reserved for custom controllers/evaluators that
        want heterogeneous per-service compute intensity.
    """

    index: int
    name: str
    image_size_mb: float = 200.0
    compute_per_unit_mhz: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative("index", self.index)
        require_positive("image_size_mb", self.image_size_mb)
        require_positive("compute_per_unit_mhz", self.compute_per_unit_mhz)


_DEFAULT_SERVICE_NAMES = [
    "vr-rendering",
    "cloud-gaming",
    "iot-analytics",
    "video-transcode",
    "ar-overlay",
    "speech-to-text",
    "object-detection",
    "map-matching",
]


class ServiceCatalog:
    """The service set `S` together with the instantiation-delay matrix.

    `d_ins[i,k]` is sampled once at construction (it is "a constant and
    given as a priori", §III-D) and never changes during a simulation.
    """

    def __init__(
        self,
        services: Sequence[Service],
        instantiation_delay_ms: np.ndarray,
    ):
        if not services:
            raise ValueError("a ServiceCatalog needs at least one service")
        expected_k = len(services)
        if instantiation_delay_ms.ndim != 2 or instantiation_delay_ms.shape[1] != expected_k:
            raise ValueError(
                "instantiation_delay_ms must have shape (n_stations, n_services); "
                f"got {instantiation_delay_ms.shape} for {expected_k} services"
            )
        if np.any(instantiation_delay_ms < 0):
            raise ValueError("instantiation delays must be non-negative")
        for position, service in enumerate(services):
            if service.index != position:
                raise ValueError(
                    f"service at position {position} has index {service.index}; "
                    "catalog indices must be 0..k-1 in order"
                )
        self._services: List[Service] = list(services)
        self._d_ins = np.asarray(instantiation_delay_ms, dtype=float)

    @classmethod
    def generate(
        cls,
        n_services: int,
        n_stations: int,
        rng: np.random.Generator,
        delay_range_ms: Sequence[float] = _DEFAULT_INSTANTIATION_RANGE_MS,
        names: Optional[Sequence[str]] = None,
    ) -> "ServiceCatalog":
        """Build a catalog with uniform-random instantiation delays.

        Delays scale mildly with the service image size, so bigger services
        cost more to instantiate everywhere — the heterogeneity the paper
        ascribes to "different services in different base stations".
        """
        require_positive("n_services", n_services)
        require_positive("n_stations", n_stations)
        lo, hi = delay_range_ms
        require_positive("delay_range upper bound", hi)
        if lo > hi:
            raise ValueError(f"delay_range_ms must be (low, high) with low <= high, got {delay_range_ms}")

        chosen_names = list(names) if names is not None else [
            _DEFAULT_SERVICE_NAMES[i % len(_DEFAULT_SERVICE_NAMES)]
            + ("" if i < len(_DEFAULT_SERVICE_NAMES) else f"-{i}")
            for i in range(n_services)
        ]
        if len(chosen_names) != n_services:
            raise ValueError("names must have exactly n_services entries")

        services = [
            Service(
                index=i,
                name=chosen_names[i],
                image_size_mb=float(rng.uniform(100.0, 500.0)),
            )
            for i in range(n_services)
        ]
        base = rng.uniform(lo, hi, size=(n_stations, n_services))
        image_scale = np.array([s.image_size_mb / 300.0 for s in services])
        d_ins = base * (0.75 + 0.5 * image_scale[np.newaxis, :])
        return cls(services, d_ins)

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def __getitem__(self, index: int) -> Service:
        return self._services[index]

    @property
    def n_stations(self) -> int:
        """Number of base stations the delay matrix covers."""
        return self._d_ins.shape[0]

    def instantiation_delay(self, station_index: int, service_index: int) -> float:
        """`d_ins[i,k]` in milliseconds."""
        return float(self._d_ins[station_index, service_index])

    @property
    def instantiation_matrix(self) -> np.ndarray:
        """The full `(n_stations, n_services)` delay matrix (copy)."""
        return self._d_ins.copy()

    def by_name(self, name: str) -> Service:
        """Look up a service by its label; raises ``KeyError`` when absent."""
        matches: Dict[str, Service] = {s.name: s for s in self._services}
        if name not in matches:
            raise KeyError(f"no service named {name!r}; have {sorted(matches)}")
        return matches[name]
