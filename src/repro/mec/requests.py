"""User requests `r_l = <rho_l(t), S_k>` (paper §III-B).

A request binds a user (with a location on the deployment plane and hidden
features) to a service and a *basic* demand `rho_l^bsc`; the per-slot bursty
component `rho_l^bst(t)` is produced by :mod:`repro.workload` and combined
via Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mec.geometry import Point
from repro.utils.validation import require_non_negative

__all__ = ["Request"]


@dataclass
class Request:
    """A user request `r_l`.

    Attributes
    ----------
    index:
        Position in the request set `R` (the `l` of `r_l`).
    service_index:
        The required service `S_k` (index into the :class:`ServiceCatalog`).
    basic_demand_mb:
        `rho_l^bsc` — the smallest per-slot data volume over the horizon,
        "usually given as a priori" (§III-B).
    location:
        User position, used for coverage (and for Pri_GD's priority and the
        GAN's latent location code `c^t`).
    hotspot_index:
        Which workload hotspot/location cluster this user belongs to; users
        sharing a hotspot burst together (the museum-VR example).  ``None``
        for users not attached to any hotspot.
    group_tag:
        Hidden user-group feature (e.g. "tourist", "commuter"); part of the
        hidden features the GAN conditions on.
    """

    index: int
    service_index: int
    basic_demand_mb: float
    location: Point = field(default_factory=lambda: Point(0.0, 0.0))
    hotspot_index: Optional[int] = None
    group_tag: str = "default"

    def __post_init__(self) -> None:
        require_non_negative("index", self.index)
        require_non_negative("service_index", self.service_index)
        require_non_negative("basic_demand_mb", self.basic_demand_mb)
        if self.basic_demand_mb == 0:
            raise ValueError("basic_demand_mb must be strictly positive (Eq. 1 basic demand)")

    def demand_at(self, bursty_mb: float) -> float:
        """Total demand `rho_l(t) = rho_l^bsc + rho_l^bst(t)` (Eq. 1)."""
        require_non_negative("bursty_mb", bursty_mb)
        return self.basic_demand_mb + bursty_mb
