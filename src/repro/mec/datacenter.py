"""The remote data center: where services live before they are cached.

Paper §III-C: services are "originally deployed in the remote data centers
in the core network"; §VI-A quantifies the cost of *not* caching — "the
average delay experienced in a remote data center is a value between 50
and 100 milliseconds" (versus 5-50 ms at the base-station tiers).  This
module models that remote option so examples and ablations can compare
edge caching against the serve-everything-from-the-cloud default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mec.requests import Request
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["RemoteDataCenter", "cloud_only_delay_ms"]

_PAPER_DC_DELAY_BAND_MS = (50.0, 100.0)


class RemoteDataCenter:
    """A core-network data center with effectively unlimited capacity.

    The per-slot unit-processing delay (which, as for the base stations,
    folds in the long core-network round trip) is drawn uniformly from the
    paper's 50-100 ms band, slot-keyed so realisations are deterministic
    per slot and independent of query order.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        delay_band_ms: Sequence[float] = _PAPER_DC_DELAY_BAND_MS,
    ):
        low, high = float(delay_band_ms[0]), float(delay_band_ms[1])
        require_positive("delay band lower bound", low)
        if low > high:
            raise ValueError(
                f"delay_band_ms must be (low, high) with low <= high, got "
                f"{delay_band_ms}"
            )
        self._band = (low, high)
        self._seed = int(rng.integers(2**63 - 1))

    @property
    def delay_band_ms(self) -> "tuple[float, float]":
        """The (low, high) unit-delay band."""
        return self._band

    def unit_delay_ms(self, slot: int) -> float:
        """Realised unit-processing delay `d_dc(t)` for ``slot``."""
        require_non_negative("slot", slot)
        low, high = self._band
        slot_rng = np.random.default_rng((self._seed, int(slot)))
        return float(slot_rng.uniform(low, high))

    @property
    def mean_unit_delay_ms(self) -> float:
        """The expected unit delay (band midpoint)."""
        low, high = self._band
        return (low + high) / 2.0


def cloud_only_delay_ms(
    datacenter: RemoteDataCenter,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    slot: int,
) -> float:
    """Average per-request delay when *nothing* is cached at the edge.

    Every request's data goes to the remote data center: the no-MEC
    baseline every edge-caching gain is measured against.  No
    instantiation cost is charged (the services are already deployed
    there, §III-C).
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    if demands_mb.shape != (len(requests),):
        raise ValueError(
            f"demand vector must have shape ({len(requests)},), got "
            f"{demands_mb.shape}"
        )
    if np.any(demands_mb < 0):
        raise ValueError("demands must be non-negative")
    return float(demands_mb.mean() * datacenter.unit_delay_ms(slot))
