"""Backhaul paths: propagation + serialization delays across the topology.

The paper's delay model (Eq. 2) folds everything into the per-station
processing delay; §III-C still describes the mechanism — "its data can be
*transferred* to its service S_k that has already been cached into one of
the base stations".  This module makes that transfer explicit: shortest
paths over the topology's ``delay_ms`` edge weights, plus per-hop
serialization at the edge ``bandwidth_mbps``.  Used by the transport-aware
cost extension (:func:`repro.core.assignment.evaluate_with_transport`) and
available to users building richer delay models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.mec.geometry import Point
from repro.mec.network import MECNetwork
from repro.utils.validation import require_non_negative

__all__ = ["BackhaulPaths", "access_station"]


class BackhaulPaths:
    """All-pairs shortest backhaul paths, computed lazily per source.

    Shortest paths minimise summed link propagation delay (``delay_ms``);
    serialization cost is then accumulated along the chosen path from each
    link's ``bandwidth_mbps``.
    """

    def __init__(self, graph: nx.Graph):
        for u, v, data in graph.edges(data=True):
            if "delay_ms" not in data or "bandwidth_mbps" not in data:
                raise ValueError(
                    f"edge ({u}, {v}) lacks delay_ms/bandwidth_mbps attributes"
                )
        self._graph = graph
        self._distance_cache: Dict[int, Dict[int, float]] = {}
        self._path_cache: Dict[int, Dict[int, List[int]]] = {}

    def _ensure_source(self, source: int) -> None:
        if source not in self._distance_cache:
            if source not in self._graph:
                raise KeyError(f"node {source} not in the topology")
            distances, paths = nx.single_source_dijkstra(
                self._graph, source, weight="delay_ms"
            )
            self._distance_cache[source] = distances
            self._path_cache[source] = paths

    def propagation_delay_ms(self, source: int, target: int) -> float:
        """Summed link propagation delay of the shortest path (0 if same)."""
        if source == target:
            return 0.0
        self._ensure_source(source)
        distances = self._distance_cache[source]
        if target not in distances:
            raise nx.NetworkXNoPath(f"no path from {source} to {target}")
        return float(distances[target])

    def path(self, source: int, target: int) -> List[int]:
        """Node sequence of the shortest path (inclusive of endpoints)."""
        if source == target:
            return [source]
        self._ensure_source(source)
        paths = self._path_cache[source]
        if target not in paths:
            raise nx.NetworkXNoPath(f"no path from {source} to {target}")
        return list(paths[target])

    def transfer_delay_ms(self, source: int, target: int, data_mb: float) -> float:
        """Propagation plus per-hop serialization for ``data_mb`` megabytes.

        Serialization per hop is ``data_mb * 8 / bandwidth_mbps`` seconds,
        converted to milliseconds (store-and-forward along the path).
        """
        require_non_negative("data_mb", data_mb)
        if source == target:
            return 0.0
        nodes = self.path(source, target)
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            edge = self._graph.edges[u, v]
            total += float(edge["delay_ms"])
            total += (data_mb * 8.0 / float(edge["bandwidth_mbps"])) * 1000.0
        return total

    def hop_count(self, source: int, target: int) -> int:
        """Number of links on the shortest path."""
        return len(self.path(source, target)) - 1


def access_station(network: MECNetwork, point: Point) -> int:
    """The base station a user at ``point`` attaches to.

    The nearest *covering* station (smallest distance among stations whose
    disk contains the point); falls back to the globally nearest station
    when nothing covers the user (macro-hole), mirroring cellular
    best-server association.
    """
    covering = network.covering_stations(point)
    pool = covering if covering else range(network.n_stations)
    return min(
        pool, key=lambda i: network.stations[i].position.distance_to(point)
    )
