"""The MECNetwork facade: topology + stations + services + delay process.

This ties the substrate together into the object every controller and the
simulation engine consume.  Construction helpers reproduce the paper's two
evaluation settings:

* :meth:`MECNetwork.synthetic` — GT-ITM-style random topology (Figs. 3, 4,
  6, 7 sweep points);
* :meth:`MECNetwork.as1755` — the AS1755-scale real-world topology
  (Figs. 5, 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.mec.basestation import BaseStation, BaseStationTier
from repro.mec.delay import DelayProcess, UniformTierDelay
from repro.mec.geometry import Point
from repro.mec.services import ServiceCatalog
from repro.mec.topology import as1755_topology, gtitm_topology, place_base_stations
from repro.utils.seeding import RngRegistry
from repro.utils.validation import require_positive

__all__ = ["MECNetwork"]

_DEFAULT_C_UNIT_MHZ = 50.0


class MECNetwork:
    """A complete 5G-enabled MEC network `G = (BS, E)`.

    Attributes
    ----------
    graph:
        Backhaul topology; node `i` corresponds to ``stations[i]``.
    stations:
        The base stations with their cloudlets.
    services:
        The service catalog `S` with instantiation delays.
    delays:
        The unit-processing-delay process `d_i(t)`.
    c_unit_mhz:
        `C_unit` — computing resource (MHz) consumed per MB of request data.
    """

    def __init__(
        self,
        graph: nx.Graph,
        stations: Sequence[BaseStation],
        services: ServiceCatalog,
        delays: DelayProcess,
        c_unit_mhz: float = _DEFAULT_C_UNIT_MHZ,
    ):
        if graph.number_of_nodes() != len(stations):
            raise ValueError(
                f"graph has {graph.number_of_nodes()} nodes but "
                f"{len(stations)} stations were supplied"
            )
        if delays.n_stations != len(stations):
            raise ValueError(
                f"delay process covers {delays.n_stations} stations, "
                f"need {len(stations)}"
            )
        if services.n_stations != len(stations):
            raise ValueError(
                f"service catalog covers {services.n_stations} stations, "
                f"need {len(stations)}"
            )
        require_positive("c_unit_mhz", c_unit_mhz)
        self.graph = graph
        self.stations: List[BaseStation] = list(stations)
        self.services = services
        self.delays = delays
        self.c_unit_mhz = float(c_unit_mhz)

    # ------------------------------------------------------------------ #
    # Constructors mirroring the paper's evaluation settings
    # ------------------------------------------------------------------ #

    @classmethod
    def synthetic(
        cls,
        n_stations: int,
        n_services: int,
        rngs: RngRegistry,
        link_probability: float = 0.1,
        c_unit_mhz: float = _DEFAULT_C_UNIT_MHZ,
        noise_fraction: float = 0.25,
        anchor_points: Optional[Sequence[Point]] = None,
    ) -> "MECNetwork":
        """GT-ITM-style synthetic network (paper §VI-A defaults).

        ``anchor_points`` (user hotspots) pull the small-cell placement —
        see :func:`repro.mec.topology.place_base_stations`.
        """
        require_positive("n_stations", n_stations)
        require_positive("n_services", n_services)
        topo_rng = rngs.get("topology")
        graph = gtitm_topology(n_stations, topo_rng, link_probability)
        stations = place_base_stations(
            graph, rngs.get("placement"), anchor_points=anchor_points
        )
        services = ServiceCatalog.generate(n_services, n_stations, rngs.get("services"))
        delays = UniformTierDelay(stations, rngs.get("delays"), noise_fraction=noise_fraction)
        return cls(graph, stations, services, delays, c_unit_mhz)

    @classmethod
    def as1755(
        cls,
        n_services: int,
        rngs: RngRegistry,
        c_unit_mhz: float = _DEFAULT_C_UNIT_MHZ,
        noise_fraction: float = 0.25,
        bottleneck_strength: float = 1.0,
        anchor_points: Optional[Sequence[Point]] = None,
    ) -> "MECNetwork":
        """AS1755-scale real topology with degree-driven congestion.

        Station delay means are inflated by a per-node congestion factor
        proportional to normalised degree: hub-adjacent stations are the
        bottlenecks, which is what widens the gap between the learning
        algorithm and the baselines in Fig. 5.
        """
        require_positive("n_services", n_services)
        if bottleneck_strength < 0:
            raise ValueError("bottleneck_strength must be >= 0")
        graph = as1755_topology()
        n = graph.number_of_nodes()
        stations = place_base_stations(
            graph, rngs.get("placement"), anchor_points=anchor_points
        )
        services = ServiceCatalog.generate(n_services, n, rngs.get("services"))
        degrees = np.array([graph.degree(i) for i in range(n)], dtype=float)
        congestion = 1.0 + bottleneck_strength * degrees / degrees.max()
        delays = UniformTierDelay(
            stations,
            rngs.get("delays"),
            noise_fraction=noise_fraction,
            congestion=congestion,
        )
        return cls(graph, stations, services, delays, c_unit_mhz)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by controllers / metrics
    # ------------------------------------------------------------------ #

    @property
    def n_stations(self) -> int:
        """Number of base stations |BS|."""
        return len(self.stations)

    @property
    def n_services(self) -> int:
        """Number of services |S|."""
        return len(self.services)

    @property
    def capacities_mhz(self) -> np.ndarray:
        """Vector of `C(bs_i)` over all stations."""
        return np.array([bs.capacity_mhz for bs in self.stations])

    def total_capacity_mhz(self) -> float:
        """Aggregate compute across all cloudlets."""
        return float(self.capacities_mhz.sum())

    def coverage_count(self, point: Point) -> int:
        """How many base stations cover ``point`` (Pri_GD's priority key)."""
        return sum(1 for bs in self.stations if bs.covers(point))

    def covering_stations(self, point: Point) -> List[int]:
        """Indices of stations whose disk contains ``point``."""
        return [bs.index for bs in self.stations if bs.covers(point)]

    def tier_counts(self) -> Dict[BaseStationTier, int]:
        """Histogram of stations per tier (for sanity checks and docs)."""
        counts: Dict[BaseStationTier, int] = {tier: 0 for tier in BaseStationTier}
        for bs in self.stations:
            counts[bs.tier] += 1
        return counts

    def clear_caches(self) -> None:
        """Evict every cached service instance (reset between repetitions)."""
        for bs in self.stations:
            bs.cached_services.clear()

    def validate_demand_fits(self, total_demand_mb: float) -> None:
        """Enforce the paper's feasibility assumption (§III-E).

        The problem definition assumes aggregate station resources exceed
        total demand; violating that makes every per-slot ILP infeasible,
        so we fail fast with a clear message.
        """
        needed = total_demand_mb * self.c_unit_mhz
        available = self.total_capacity_mhz()
        if needed > available:
            raise ValueError(
                f"total demand needs {needed:.0f} MHz but the network only has "
                f"{available:.0f} MHz; reduce demand or grow the network "
                "(paper §III-E assumes accumulative resources exceed demand)"
            )
