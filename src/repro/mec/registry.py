"""Named topology factories: ``make_topology``.

The topology counterpart of :func:`repro.core.make_controller`: every
network construction recipe the experiments and campaign specs use is
registered by name, the name is stamped onto the built network
(``network.topology_name``) and enforced as its identity — what a
:class:`repro.campaigns.CampaignSpec` stores for a cell is exactly the
name the cell's network reports.

Factories are called as ``factory(rngs, n_stations=..., n_services=...,
anchor_points=..., **options)``.  Synthetic families honour
``n_stations``; fixed real topologies (``as1755``, ``as3967``) ignore a
``None`` request and reject a mismatching explicit one, so a spec that
pins a station count cannot silently run on a different-sized world.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from repro.mec.geometry import Point
from repro.mec.network import MECNetwork
from repro.utils.registry import Registry
from repro.utils.seeding import RngRegistry

__all__ = [
    "TOPOLOGIES",
    "TopologyFactory",
    "register_topology",
    "topology_names",
    "make_topology",
]

TopologyFactory = Callable[..., MECNetwork]

#: The topology registry instance (names are campaign-spec identities).
TOPOLOGIES: Registry[MECNetwork] = Registry(
    "topology",
    identity=lambda network: getattr(network, "topology_name", None),
)


def register_topology(name: str, factory: TopologyFactory) -> None:
    """Register ``factory`` under ``name`` (must be new and non-empty).

    The built network must carry ``topology_name == name`` —
    :func:`make_topology` enforces it, mirroring the controller registry.
    """
    TOPOLOGIES.register(name, factory)


def topology_names() -> Tuple[str, ...]:
    """All registered topology names, sorted."""
    return TOPOLOGIES.names()


def make_topology(
    name: str,
    rngs: RngRegistry,
    *,
    n_stations: Optional[int] = None,
    n_services: int,
    anchor_points: Optional[Sequence[Point]] = None,
    **options: Any,
) -> MECNetwork:
    """Build the network registered under ``name``.

    ``rngs`` is the repetition's seeding registry (topology generation,
    placement, services and baseline delays each read their own named
    stream); ``options`` are the factory's own tuning parameters
    (e.g. ``link_probability`` for ``gtitm``, ``bottleneck_strength`` for
    ``as1755``), forwarded verbatim.
    """
    return TOPOLOGIES.make(
        name,
        rngs,
        n_stations=n_stations,
        n_services=n_services,
        anchor_points=anchor_points,
        **options,
    )


def _stamped(network: MECNetwork, name: str) -> MECNetwork:
    network.topology_name = name
    return network


def _gtitm(
    rngs: RngRegistry,
    *,
    n_stations: Optional[int] = None,
    n_services: int,
    anchor_points: Optional[Sequence[Point]] = None,
    **options: Any,
) -> MECNetwork:
    """GT-ITM-style synthetic network (paper §VI-A, default 30 stations)."""
    network = MECNetwork.synthetic(
        n_stations if n_stations is not None else 30,
        n_services,
        rngs,
        anchor_points=anchor_points,
        **options,
    )
    return _stamped(network, "gtitm")


def _as1755(
    rngs: RngRegistry,
    *,
    n_stations: Optional[int] = None,
    n_services: int,
    anchor_points: Optional[Sequence[Point]] = None,
    **options: Any,
) -> MECNetwork:
    """AS1755 real topology (fixed size; rejects a mismatching request)."""
    network = MECNetwork.as1755(
        n_services, rngs, anchor_points=anchor_points, **options
    )
    if n_stations is not None and n_stations != network.n_stations:
        raise ValueError(
            f"topology 'as1755' has exactly {network.n_stations} stations; "
            f"a spec requesting n_stations={n_stations} cannot run on it"
        )
    return _stamped(network, "as1755")


register_topology("gtitm", _gtitm)
register_topology("as1755", _as1755)
