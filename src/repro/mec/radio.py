"""Radio-layer model: transmit power, path loss and achievable link rate.

Paper §VI-A fixes the physical-layer parameters we reproduce here:

* transmit power — macro 40 W, micro 5 W, femto 0.1 W
* system bandwidth — 20 MHz
* modulation — 64QAM (6 bits/symbol), per the 3GPP standard

The core algorithms only consume the *processing* delay `d_i(t)` (Eq. 2),
but the radio model grounds coverage radii and supplies a wireless
transmission-delay component for the extended examples, so the simulator is
a complete network rather than a bare abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "RadioConfig",
    "path_loss_db",
    "receive_power_w",
    "snr_db",
    "link_rate_mbps",
    "transmission_delay_ms",
]

# 3GPP-flavoured log-distance path loss parameters (urban small cell).
_PATH_LOSS_AT_1M_DB = 38.0
_PATH_LOSS_EXPONENT = 3.5
_NOISE_FLOOR_DBM = -96.0  # thermal noise over 20 MHz plus noise figure
_64QAM_BITS_PER_SYMBOL = 6.0
_SPECTRAL_EFFICIENCY_CAP = _64QAM_BITS_PER_SYMBOL * (5.0 / 6.0)  # rate-5/6 coding


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer configuration of a base station."""

    transmit_power_w: float
    bandwidth_mhz: float = 20.0
    path_loss_exponent: float = _PATH_LOSS_EXPONENT

    def __post_init__(self) -> None:
        require_positive("transmit_power_w", self.transmit_power_w)
        require_positive("bandwidth_mhz", self.bandwidth_mhz)
        require_positive("path_loss_exponent", self.path_loss_exponent)


def path_loss_db(distance_m: float, exponent: float = _PATH_LOSS_EXPONENT) -> float:
    """Log-distance path loss in dB at ``distance_m`` metres.

    Distances below one metre are clamped to one metre — the model is not
    meaningful in the near field and the clamp keeps rates finite for users
    standing next to a femtocell.
    """
    require_non_negative("distance_m", distance_m)
    require_positive("exponent", exponent)
    d = max(distance_m, 1.0)
    return _PATH_LOSS_AT_1M_DB + 10.0 * exponent * math.log10(d)


def receive_power_w(config: RadioConfig, distance_m: float) -> float:
    """Received power in watts at ``distance_m`` from the transmitter."""
    tx_dbm = 10.0 * math.log10(config.transmit_power_w * 1000.0)
    rx_dbm = tx_dbm - path_loss_db(distance_m, config.path_loss_exponent)
    return 10.0 ** (rx_dbm / 10.0) / 1000.0


def snr_db(config: RadioConfig, distance_m: float) -> float:
    """Signal-to-noise ratio in dB (interference-free licensed band).

    The paper assigns each small cell a licensed band, so we model the
    per-cell SNR without cross-cell interference.
    """
    rx_w = receive_power_w(config, distance_m)
    rx_dbm = 10.0 * math.log10(rx_w * 1000.0)
    return rx_dbm - _NOISE_FLOOR_DBM


def link_rate_mbps(config: RadioConfig, distance_m: float) -> float:
    """Achievable downlink/uplink rate in Mbps at ``distance_m``.

    Shannon capacity truncated at the 64QAM rate-5/6 spectral-efficiency
    ceiling (~5 bits/s/Hz), which is what a 3GPP 64QAM modulation scheme
    tops out at.  Returns 0 when the SNR is below the decodable threshold.
    """
    gamma_db = snr_db(config, distance_m)
    if gamma_db < -6.0:  # below any usable MCS
        return 0.0
    gamma = 10.0 ** (gamma_db / 10.0)
    efficiency = min(math.log2(1.0 + gamma), _SPECTRAL_EFFICIENCY_CAP)
    return config.bandwidth_mhz * efficiency  # MHz * bits/s/Hz == Mbps


def transmission_delay_ms(config: RadioConfig, distance_m: float, data_mb: float) -> float:
    """Time in milliseconds to push ``data_mb`` megabytes over the air.

    Raises ``ValueError`` when the user is out of decodable range — callers
    should have filtered to covering base stations first.
    """
    require_non_negative("data_mb", data_mb)
    rate = link_rate_mbps(config, distance_m)
    if rate <= 0.0:
        raise ValueError(
            f"no usable link at {distance_m:.1f} m for transmit power "
            f"{config.transmit_power_w} W"
        )
    seconds = (data_mb * 8.0) / rate
    return seconds * 1000.0
