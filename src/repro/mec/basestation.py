"""Base stations and the three 5G tiers of paper §VI-A.

Each base station `bs_i` carries a cloudlet with computing capacity
`C(bs_i)` (MHz), a coverage radius, a radio configuration, and a
per-tier band for the mean unit-data processing delay used to parameterise
its delay process `d_i(t)`:

===========  ============  ==============  ===========  ==================
tier         capacity MHz  bandwidth Mbps  radius m     mean delay band ms
===========  ============  ==============  ===========  ==================
MACRO        8000-16000    500-1000        100          30-50
MICRO        5000-10000    200-500         30           10-20
FEMTO        1000-2000     1000-2000 (*)   15           5-10
===========  ============  ==============  ===========  ==================

(*) §VI-A gives femto "computing and bandwidth capacities in the ranges of
[1,000, 2,000]" — we read both from the same band as written.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

from repro.mec.geometry import Point
from repro.mec.radio import RadioConfig
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["BaseStationTier", "TierProfile", "TIER_PROFILES", "BaseStation"]


class BaseStationTier(enum.Enum):
    """The three base-station classes considered in the evaluation."""

    MACRO = "macro"
    MICRO = "micro"
    FEMTO = "femto"


@dataclass(frozen=True)
class TierProfile:
    """Static per-tier parameter bands (paper §VI-A)."""

    tier: BaseStationTier
    capacity_mhz: Tuple[float, float]
    bandwidth_mbps: Tuple[float, float]
    radius_m: float
    transmit_power_w: float
    unit_delay_ms: Tuple[float, float]

    def sample_capacity(self, rng: np.random.Generator) -> float:
        """Draw a computing capacity uniformly from the tier band."""
        low, high = self.capacity_mhz
        return float(rng.uniform(low, high))

    def sample_bandwidth(self, rng: np.random.Generator) -> float:
        """Draw a bandwidth capacity uniformly from the tier band."""
        low, high = self.bandwidth_mbps
        return float(rng.uniform(low, high))


TIER_PROFILES: Dict[BaseStationTier, TierProfile] = {
    BaseStationTier.MACRO: TierProfile(
        tier=BaseStationTier.MACRO,
        capacity_mhz=(8000.0, 16000.0),
        bandwidth_mbps=(500.0, 1000.0),
        radius_m=100.0,
        transmit_power_w=40.0,
        unit_delay_ms=(30.0, 50.0),
    ),
    BaseStationTier.MICRO: TierProfile(
        tier=BaseStationTier.MICRO,
        capacity_mhz=(5000.0, 10000.0),
        bandwidth_mbps=(200.0, 500.0),
        radius_m=30.0,
        transmit_power_w=5.0,
        unit_delay_ms=(10.0, 20.0),
    ),
    BaseStationTier.FEMTO: TierProfile(
        tier=BaseStationTier.FEMTO,
        capacity_mhz=(1000.0, 2000.0),
        bandwidth_mbps=(1000.0, 2000.0),
        radius_m=15.0,
        transmit_power_w=0.1,
        unit_delay_ms=(5.0, 10.0),
    ),
}


@dataclass
class BaseStation:
    """A base station `bs_i` with its attached cloudlet.

    Attributes
    ----------
    index:
        Position of this station in the network's station list; also the
        bandit arm index used by the learning algorithms.
    tier:
        MACRO / MICRO / FEMTO.
    position:
        Deployment-plane location in metres.
    capacity_mhz:
        Cloudlet computing capacity `C(bs_i)`.
    bandwidth_mbps:
        Backhaul/radio bandwidth capacity.
    cached_services:
        Indices of services with a live instance on this station.  Managed
        by the controllers; exposed here so churn can be measured.
    """

    index: int
    tier: BaseStationTier
    position: Point
    capacity_mhz: float
    bandwidth_mbps: float
    cached_services: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        require_non_negative("index", self.index)
        require_positive("capacity_mhz", self.capacity_mhz)
        require_positive("bandwidth_mbps", self.bandwidth_mbps)

    @property
    def profile(self) -> TierProfile:
        """The static tier profile of this station."""
        return TIER_PROFILES[self.tier]

    @property
    def radius_m(self) -> float:
        """Coverage radius in metres."""
        return self.profile.radius_m

    @property
    def radio(self) -> RadioConfig:
        """Radio configuration derived from the tier."""
        return RadioConfig(transmit_power_w=self.profile.transmit_power_w)

    def covers(self, point: Point) -> bool:
        """True when ``point`` lies within this station's coverage disk."""
        return self.position.distance_to(point) <= self.radius_m

    def has_service(self, service_index: int) -> bool:
        """True when an instance of the service is cached here."""
        return service_index in self.cached_services

    def cache_service(self, service_index: int) -> bool:
        """Cache an instance; returns True when it was newly instantiated."""
        if service_index in self.cached_services:
            return False
        self.cached_services.add(service_index)
        return True

    def evict_service(self, service_index: int) -> bool:
        """Remove a cached instance; returns True when one was present."""
        if service_index in self.cached_services:
            self.cached_services.remove(service_index)
            return True
        return False
