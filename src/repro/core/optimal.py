"""Clairvoyant per-slot optimum for regret measurement (Eq. 10).

The regret compares the learner against the assignment an oracle knowing
the realised `d_i(t)` would have chosen.  Two variants:

* :func:`clairvoyant_cost` — the LP-relaxation optimum (a lower bound on
  the achievable integer cost, cheap at any scale);
* :func:`clairvoyant_cost_exact` — the exact ILP optimum via branch and
  bound, for the small instances used in tests and ablations.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.fastlp import PerSlotLpSolver
from repro.core.formulation import build_caching_model
from repro.lp.branch_and_bound import solve_ilp
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["clairvoyant_cost", "clairvoyant_cost_exact"]

# Most-recent (network, requests) -> PerSlotLpSolver.  clairvoyant_cost is
# called once per slot on the compute_optimal path with the *same* network
# and request list for a whole horizon, so a single-entry cache removes the
# per-slot model rebuild the way OlGdController._solve_fractional does with
# its lazily-built solver, while staying bounded (no per-run growth).
_SOLVER_CACHE: List[Tuple[MECNetwork, Tuple[Request, ...], PerSlotLpSolver]] = []


def _cached_solver(
    network: MECNetwork, requests: Sequence[Request]
) -> PerSlotLpSolver:
    requests_key = tuple(requests)
    if _SOLVER_CACHE:
        cached_network, cached_requests, solver = _SOLVER_CACHE[0]
        # Identity for the network (capacities may mutate in place — the
        # solver re-reads them each solve), equality for the requests.
        if cached_network is network and cached_requests == requests_key:
            return solver
    solver = PerSlotLpSolver(network, requests)
    # repro: allow[MP002] -- single-entry pure memo; each pool worker rebuilds an identical solver from its own (network, requests)
    _SOLVER_CACHE.clear()
    # repro: allow[MP002] -- see above; the entry never crosses processes
    _SOLVER_CACHE.append((network, requests_key, solver))
    return solver


def clairvoyant_cost(
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
) -> float:
    """Optimal Eq. (3) objective of one slot under known `d_i(t)` (LP bound).

    Solves through a cached :class:`~repro.core.fastlp.PerSlotLpSolver`
    (same LP as the dict-based reference builder, asserted equivalent in
    the test suite) instead of rebuilding the model every slot.
    """
    solver = _cached_solver(network, requests)
    _, objective = solver.solve_with_objective(
        np.asarray(demands_mb, dtype=float), np.asarray(unit_delays_ms, dtype=float)
    )
    return objective


def static_hindsight_cost(
    network: MECNetwork,
    requests: Sequence[Request],
    demand_matrix: np.ndarray,
    delay_matrix: np.ndarray,
    exact: bool = False,
    node_limit: int = 2000,
) -> float:
    """Best *fixed* caching/assignment in hindsight, averaged per slot.

    The classic "best fixed arm" comparator of adversarial bandit
    analysis: one assignment `x` (and its implied caching `y`) held for
    the whole horizon, chosen with full knowledge of every slot's demands
    and delays.  The total cost is linear in `x`:

        sum_t x_li * rho_l(t) * d_i(t)  =  x_li * C[l, i],
        C[l, i] = sum_t rho_l(t) * d_i(t),

    so a single LP/ILP over the summed coefficients solves it.  Capacity
    must hold in *every* slot, i.e. at the per-request peak demand.

    ``demand_matrix``: shape ``(T, |R|)``; ``delay_matrix``: shape
    ``(T, |BS|)``.  Returns the per-slot average cost (comparable to the
    per-slot outputs of the clairvoyant functions).
    """
    demand_matrix = np.asarray(demand_matrix, dtype=float)
    delay_matrix = np.asarray(delay_matrix, dtype=float)
    if demand_matrix.ndim != 2 or demand_matrix.shape[1] != len(requests):
        raise ValueError(
            f"demand_matrix must be (T, {len(requests)}), got {demand_matrix.shape}"
        )
    if delay_matrix.shape != (demand_matrix.shape[0], network.n_stations):
        raise ValueError(
            f"delay_matrix must be ({demand_matrix.shape[0]}, "
            f"{network.n_stations}), got {delay_matrix.shape}"
        )
    horizon = demand_matrix.shape[0]
    if horizon == 0:
        raise ValueError("need at least one slot")

    # Summed processing coefficients and per-request peak demands.
    summed = demand_matrix.T @ delay_matrix  # (|R|, |BS|)
    peaks = demand_matrix.max(axis=0)

    # Build a one-shot model: objective C[l,i]/(T*|R|) per x, with the
    # instantiation term charged every slot (T * d_ins / (T*|R|)).
    from repro.lp.model import LpModel, Sense

    R, S = len(requests), network.n_stations
    scale = 1.0 / (horizon * R)
    model = LpModel("static-hindsight")
    for l in range(R):
        for i in range(S):
            model.add_variable(
                low=0.0, high=1.0, objective=scale * summed[l, i], integer=exact,
                name=f"x[{l},{i}]",
            )
    needed_services = sorted({r.service_index for r in requests})
    y_index = {}
    for k in needed_services:
        for i in range(S):
            y_index[(k, i)] = model.add_variable(
                low=0.0,
                high=1.0,
                objective=scale * horizon * network.services.instantiation_delay(i, k),
                integer=exact,
                name=f"y[{k},{i}]",
            )
    for l in range(R):
        model.add_constraint(
            {l * S + i: 1.0 for i in range(S)}, Sense.EQ, 1.0
        )
    for i in range(S):
        model.add_constraint(
            {l * S + i: peaks[l] * network.c_unit_mhz for l in range(R)},
            Sense.LE,
            network.stations[i].capacity_mhz,
        )
    for l, request in enumerate(requests):
        for i in range(S):
            model.add_constraint(
                {y_index[(request.service_index, i)]: 1.0, l * S + i: -1.0},
                Sense.GE,
                0.0,
            )
    if exact:
        result = solve_ilp(model, node_limit=node_limit)
        if not result.has_solution:
            raise RuntimeError(f"hindsight ILP found no solution: {result.status}")
        return result.objective
    solution = solve_lp(model)
    if not solution.is_optimal:
        raise RuntimeError(
            f"hindsight LP failed ({solution.status}): {solution.message}"
        )
    return solution.objective


def clairvoyant_cost_exact(
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
    node_limit: int = 2000,
) -> float:
    """Exact integer optimum of one slot (small instances only).

    Falls back to the best incumbent when the node limit is reached (the
    result then still upper-bounds the optimum and lower-bounds nothing —
    callers needing certainty should check instance size first).
    """
    model, _ = build_caching_model(
        network, requests, demands_mb, unit_delays_ms, integer=True
    )
    result = solve_ilp(model, node_limit=node_limit)
    if not result.has_solution:
        raise RuntimeError(f"clairvoyant ILP found no solution: {result.status}")
    return result.objective
