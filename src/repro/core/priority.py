"""`Pri_GD` baseline: the priority-driven caching of Xie et al. [20].

"The algorithm assigns each request a priority according to the number of
base stations covered in its transmission range, and the base station
takes priority in processing the high priority request."  Requests are
served in decreasing coverage-count order; each picks the best (lowest
historical-mean delay) station among those *covering* its user with
remaining capacity, falling back to the best station anywhere when no
covering station can host it.  Like `Greedy_GD` it exploits historical
means without exploration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bandits.arms import ArmStats
from repro.core.assignment import Assignment
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["PriorityController"]


class PriorityController(Controller):
    """`Pri_GD`: coverage-count priorities, covering-station preference."""

    name = "Pri_GD"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
    ):
        super().__init__(network, requests)
        self._rng = rng
        d_min, d_max = network.delays.bounds
        self.arms = ArmStats(network.n_stations, prior_mean=(d_min + d_max) / 2.0)
        # Coverage counts are static (user locations are per-request fixed).
        self._priorities = np.array(
            [network.coverage_count(r.location) for r in requests]
        )
        self._covering: List[np.ndarray] = [
            np.array(network.covering_stations(r.location), dtype=int)
            for r in requests
        ]

    @property
    def priorities(self) -> np.ndarray:
        """Coverage counts per request (higher = served earlier)."""
        return self._priorities.copy()

    def _best_station(
        self,
        pool: np.ndarray,
        demand: float,
        service: int,
        theta: np.ndarray,
        capacities: np.ndarray,
        cached: Set[Tuple[int, int]],
    ) -> int:
        """Cheapest feasible station in ``pool`` (or -1)."""
        need = demand * self.network.c_unit_mhz
        best_station, best_cost = -1, np.inf
        for i in pool:
            if capacities[i] < need:
                continue
            cost = demand * theta[i]
            if (service, int(i)) not in cached:
                cost += self.network.services.instantiation_delay(int(i), service)
            if cost < best_cost:
                best_station, best_cost = int(i), cost
        return best_station

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is None:
            raise ValueError("Pri_GD assumes given demands (§VI benchmarks)")
        demands = np.asarray(demands, dtype=float)
        theta = self.arms.means
        capacities = self.network.capacities_mhz.copy()
        cached: Set[Tuple[int, int]] = set()
        stations = np.empty(self.n_requests, dtype=int)

        # High priority first; ties broken by request index (stable).
        order = np.argsort(-self._priorities, kind="stable")
        all_stations = np.arange(self.network.n_stations)
        for l in order:
            request = self.requests[l]
            station = self._best_station(
                self._covering[l], demands[l], request.service_index,
                theta, capacities, cached,
            )
            if station < 0:
                station = self._best_station(
                    all_stations, demands[l], request.service_index,
                    theta, capacities, cached,
                )
            if station < 0:
                station = int(np.argmax(capacities))
            stations[l] = station
            capacities[station] -= demands[l] * self.network.c_unit_mhz
            cached.add((request.service_index, station))

        return Assignment.from_stations(
            stations, self.requests, service_of=self.service_of
        )

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        played, observed = self.observed_delays(unit_delays, assignment)
        self.arms.observe_many(played.tolist(), observed.tolist())

    def state_dict(self) -> Dict[str, Any]:
        from repro.state.snapshot import rng_state

        return {"arms": self.arms.state_dict(), "rng": rng_state(self._rng)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from repro.state.snapshot import set_rng_state

        self.arms.load_state_dict(state["arms"])
        set_rng_state(self._rng, state["rng"])
