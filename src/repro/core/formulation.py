"""The per-slot ILP of Eq. (3)-(7) as an :class:`LpModel`.

Variables: `x_{li}` (request `l` served at station `i`) and `y_{ki}`
(instance of service `k` cached at station `i`).  Objective (Eq. 3):

    min (1/|R|) * ( sum_{l,i} x_li * rho_l(t) * theta_i
                    + sum_{k,i} y_ki * d_ins[i,k] )

subject to assignment (Eq. 4), capacity (Eq. 5) and caching-coupling
(Eq. 6) constraints.  `theta_i` is whatever delay estimate the caller
holds — the bandit means for the online algorithm, the true `d_i(t)` for
the clairvoyant optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.lp.model import LpModel, Sense
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["CachingVariables", "build_caching_model"]


@dataclass(frozen=True)
class CachingVariables:
    """Index bookkeeping between the LP columns and (l, i) / (k, i) pairs."""

    n_requests: int
    n_stations: int
    service_station_pairs: Tuple[Tuple[int, int], ...]
    _y_offset: int
    _y_index: Dict[Tuple[int, int], int]

    def x_index(self, request: int, station: int) -> int:
        """Column of `x_{li}`."""
        if not 0 <= request < self.n_requests:
            raise IndexError(f"request {request} out of range")
        if not 0 <= station < self.n_stations:
            raise IndexError(f"station {station} out of range")
        return request * self.n_stations + station

    def y_index(self, service: int, station: int) -> int:
        """Column of `y_{ki}` (only pairs actually demanded exist)."""
        key = (service, station)
        if key not in self._y_index:
            raise KeyError(f"no y variable for service {service} at station {station}")
        return self._y_index[key]

    def x_matrix(self, values: np.ndarray) -> np.ndarray:
        """Reshape a solution vector into the `(|R|, |BS|)` x-matrix."""
        x_part = values[: self.n_requests * self.n_stations]
        return x_part.reshape(self.n_requests, self.n_stations)

    def y_values(self, values: np.ndarray) -> Dict[Tuple[int, int], float]:
        """The `y_{ki}` values keyed by `(service, station)`."""
        return {
            pair: float(values[self._y_offset + position])
            for position, pair in enumerate(self.service_station_pairs)
        }


def build_caching_model(
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    theta_ms: np.ndarray,
    *,
    integer: bool = False,
    slot_seconds: Optional[float] = None,
) -> Tuple[LpModel, CachingVariables]:
    """Assemble the Eq. (3)-(7) model.

    ``integer=False`` gives the LP relaxation (Eq. 8) used by Algorithm 1;
    ``integer=True`` the exact ILP for the clairvoyant solver.  Only the
    `(service, station)` pairs of services actually requested get `y`
    variables — the others are always 0 in any optimum.

    ``slot_seconds`` (extension, default off) additionally constrains each
    station's *bandwidth*: the data routed to `bs_i` per slot must fit its
    §VI-A bandwidth capacity, ``sum_l x_li * rho_l <= bw_i * slot_seconds
    / 8`` megabytes.  The paper specifies the per-tier bandwidths but its
    formulation only constrains compute; this flag activates the natural
    companion constraint.
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    theta_ms = np.asarray(theta_ms, dtype=float)
    n_requests, n_stations = len(requests), network.n_stations
    if n_requests == 0:
        raise ValueError("need at least one request")
    if demands_mb.shape != (n_requests,):
        raise ValueError(
            f"demand vector must have shape ({n_requests},), got {demands_mb.shape}"
        )
    if np.any(demands_mb < 0):
        raise ValueError("demands must be non-negative")
    if theta_ms.shape != (n_stations,):
        raise ValueError(
            f"theta vector must have shape ({n_stations},), got {theta_ms.shape}"
        )

    model = LpModel("service-caching")
    scale = 1.0 / n_requests

    # x variables, ordered (l, i) row-major to match CachingVariables.
    for l in range(n_requests):
        for i in range(n_stations):
            model.add_variable(
                low=0.0,
                high=1.0,
                objective=scale * demands_mb[l] * theta_ms[i],
                integer=integer,
                name=f"x[{l},{i}]",
            )

    needed_services = sorted({r.service_index for r in requests})
    pairs: List[Tuple[int, int]] = [
        (k, i) for k in needed_services for i in range(n_stations)
    ]
    y_offset = n_requests * n_stations
    y_index: Dict[Tuple[int, int], int] = {}
    for position, (k, i) in enumerate(pairs):
        column = model.add_variable(
            low=0.0,
            high=1.0,
            objective=scale * network.services.instantiation_delay(i, k),
            integer=integer,
            name=f"y[{k},{i}]",
        )
        y_index[(k, i)] = column
        assert column == y_offset + position

    variables = CachingVariables(
        n_requests=n_requests,
        n_stations=n_stations,
        service_station_pairs=tuple(pairs),
        _y_offset=y_offset,
        _y_index=y_index,
    )

    # Eq. 4: every request is served exactly once.
    for l in range(n_requests):
        model.add_constraint(
            {variables.x_index(l, i): 1.0 for i in range(n_stations)},
            Sense.EQ,
            1.0,
            name=f"assign[{l}]",
        )

    # Eq. 5: station capacity.
    for i in range(n_stations):
        coefficients = {
            variables.x_index(l, i): demands_mb[l] * network.c_unit_mhz
            for l in range(n_requests)
        }
        model.add_constraint(
            coefficients,
            Sense.LE,
            network.stations[i].capacity_mhz,
            name=f"capacity[{i}]",
        )

    # Extension: per-station bandwidth (data volume per slot).
    if slot_seconds is not None:
        if slot_seconds <= 0:
            raise ValueError(f"slot_seconds must be > 0, got {slot_seconds}")
        for i in range(n_stations):
            budget_mb = network.stations[i].bandwidth_mbps * slot_seconds / 8.0
            model.add_constraint(
                {
                    variables.x_index(l, i): demands_mb[l]
                    for l in range(n_requests)
                },
                Sense.LE,
                budget_mb,
                name=f"bandwidth[{i}]",
            )

    # Eq. 6: y_{ki} >= x_{li} for every request of service k.
    for l, request in enumerate(requests):
        k = request.service_index
        for i in range(n_stations):
            model.add_constraint(
                {
                    variables.y_index(k, i): 1.0,
                    variables.x_index(l, i): -1.0,
                },
                Sense.GE,
                0.0,
                name=f"couple[{l},{i}]",
            )

    return model, variables
