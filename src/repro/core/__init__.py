"""The paper's contribution: LP-guided online service caching + baselines.

* :class:`OlGdController` — Algorithm 1 (`OL_GD`): per-slot ILP relaxation,
  candidate sets from the fractional solution, epsilon-greedy exploration,
  bandit updates of the per-station delay means.
* :class:`OlGanController` / :class:`OlRegController` — Algorithm 2
  (`OL_GAN`) and the `OL_Reg` baseline: a demand predictor feeding the
  same LP-guided core.
* :class:`GreedyController` (`Greedy_GD`) and :class:`PriorityController`
  (`Pri_GD`) — the paper's §VI comparison algorithms.
* :mod:`repro.core.optimal` — the clairvoyant per-slot optimum used in
  regret measurement; :mod:`repro.core.theory` — Lemma 1 / Theorem 1.
"""

from repro.core.admission import AdmissionDecision, select_admissible
from repro.core.assignment import (
    Assignment,
    SlotEvaluator,
    evaluate_assignment,
    evaluate_with_transport,
    service_indices,
)
from repro.core.candidates import (
    build_candidate_sets,
    repair_capacity,
    sample_assignment,
)
from repro.core.churn import HysteresisController, evaluate_with_churn
from repro.core.cmab import CmabController, cmab_thompson, cmab_ucb
from repro.core.controller import Controller
from repro.core.formulation import CachingVariables, build_caching_model
from repro.core.greedy import GreedyController
from repro.core.ol_gan import OlGanController
from repro.core.ol_gd import ExplorationConfig, OlGdController
from repro.core.ol_reg import OlRegController
from repro.core.optimal import clairvoyant_cost, clairvoyant_cost_exact, static_hindsight_cost
from repro.core.priority import PriorityController
from repro.core.queueing import evaluate_mm1, mm1_factor
from repro.core.registry import (
    CONTROLLERS,
    ControllerFactory,
    controller_names,
    make_controller,
    register_controller,
)
from repro.core.theory import lemma1_gap, theorem1_regret_bound

__all__ = [
    "AdmissionDecision",
    "select_admissible",
    "Assignment",
    "SlotEvaluator",
    "evaluate_assignment",
    "evaluate_with_transport",
    "service_indices",
    "HysteresisController",
    "evaluate_with_churn",
    "CmabController",
    "cmab_thompson",
    "cmab_ucb",
    "build_candidate_sets",
    "repair_capacity",
    "sample_assignment",
    "Controller",
    "CachingVariables",
    "build_caching_model",
    "GreedyController",
    "OlGanController",
    "ExplorationConfig",
    "OlGdController",
    "OlRegController",
    "clairvoyant_cost",
    "clairvoyant_cost_exact",
    "static_hindsight_cost",
    "PriorityController",
    "ControllerFactory",
    "controller_names",
    "make_controller",
    "CONTROLLERS",
    "register_controller",
    "evaluate_mm1",
    "mm1_factor",
    "lemma1_gap",
    "theorem1_regret_bound",
]
