"""Algorithm 1 — `OL_GD`: online learning with LP-guided arm selection.

Per slot (Algorithm 1 lines 2-11):

1. build the Eq. (3)-(7) model with the *learned* delay means `theta_i`
   and relax it (Eq. 8);
2. solve the LP, read the fractional `x*`, build the candidate sets
   `BS_l^candi = {i : x*_li >= gamma}` (Eq. 9);
3. with probability `1 - eps_t` assign each request within its candidate
   set with probability `x*_li`; with probability `eps_t` explore a random
   station outside the set;
4. repair any capacity violation introduced by independent rounding;
5. after the slot, observe `d_i(t)` for every *played* station and update
   its running mean (line 11).

Exploration schedule: Algorithm 1 line 2 fixes `eps_t = 1/4`, while the
Theorem 1 analysis works with the decaying schedule `c/t` (0 < c < 1).
Both are provided via :class:`ExplorationConfig`; the default is the
decaying schedule the regret bound actually assumes.  Exploration scope
``"request"`` redraws the explore coin per request (smooth, the default);
``"slot"`` is the paper-literal single coin that sends *every* request
exploring together — compared in the `abl-eps` ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.bandits.arms import ArmStats
from repro.core.assignment import Assignment
from repro.core.candidates import (
    build_candidate_sets,
    repair_capacity,
    sample_assignment,
)
from repro.core.controller import Controller
from repro.core.formulation import build_caching_model
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.validation import require_probability

__all__ = ["ExplorationConfig", "OlGdController"]


@dataclass(frozen=True)
class ExplorationConfig:
    """How `eps_t` is produced and applied.

    ``schedule="decaying"`` gives `eps_t = min(1, c / t)` (Theorem 1);
    ``schedule="constant"`` gives `eps_t = c` (Algorithm 1 line 2 with
    c = 1/4).  ``scope`` selects per-``"request"`` or per-``"slot"``
    exploration coins.
    """

    schedule: str = "decaying"
    c: float = 0.5
    scope: str = "request"

    def __post_init__(self) -> None:
        if self.schedule not in ("decaying", "constant"):
            raise ValueError(
                f"schedule must be 'decaying' or 'constant', got {self.schedule!r}"
            )
        if self.scope not in ("request", "slot"):
            raise ValueError(f"scope must be 'request' or 'slot', got {self.scope!r}")
        require_probability("c", self.c)
        if self.c == 0.0 and self.schedule == "decaying":
            raise ValueError("decaying schedule needs c > 0 (Theorem 1: 0 < c < 1)")

    def epsilon(self, slot: int) -> float:
        """`eps_t` for 0-based ``slot``."""
        if self.schedule == "constant":
            return self.c
        return min(1.0, self.c / (slot + 1))

    @classmethod
    def paper_literal(cls) -> "ExplorationConfig":
        """Algorithm 1 exactly as printed: constant 1/4, one coin per slot."""
        return cls(schedule="constant", c=0.25, scope="slot")


class OlGdController(Controller):
    """`OL_GD` (Algorithm 1).

    Parameters
    ----------
    gamma:
        Candidate threshold of Eq. (9).
    exploration:
        The `eps_t` schedule (see :class:`ExplorationConfig`).
    rng:
        Source of rounding/exploration randomness.
    repair:
        Enable the deterministic capacity repair after rounding
        (DESIGN.md §5); disable to study the raw algorithm.
    estimator_window:
        ``None`` (default) keeps the paper's cumulative means `theta_i`;
        an integer switches to a sliding-window estimator
        (:class:`repro.bandits.WindowedArmStats`), the standard
        non-stationary-bandit extension for the drifting delays of §I —
        compared in ``benchmarks/bench_ablation_window.py``.
    lp_warm_start:
        Warm-start each slot's LP from the previous optimum's support
        with dual-pricing verification (see
        :class:`repro.core.fastlp.PerSlotLpSolver`).  Objective-exact but
        possibly a different optimal vertex, so sampled assignments — and
        therefore resumed trajectories — are not bit-identical to cold
        solves; off by default.

    Unplayed arms take the *optimistic* prior `d_min` (Lemma 1 assumes the
    delay bounds are known a priori): an unplayed station looks attractive
    to the LP, so every arm receives assignment mass early and its true
    mean is learned — the standard optimism-under-uncertainty device, and
    the learning behaviour the non-exploring baselines lack.
    """

    name = "OL_GD"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
        *,
        gamma: float = 0.1,
        exploration: Optional[ExplorationConfig] = None,
        repair: bool = True,
        estimator_window: Optional[int] = None,
        lp_warm_start: bool = False,
    ):
        super().__init__(network, requests)
        require_probability("gamma", gamma)
        self.gamma = float(gamma)
        self.exploration = exploration if exploration is not None else ExplorationConfig()
        self._rng = rng
        self._repair = bool(repair)
        self._lp_warm_start = bool(lp_warm_start)
        d_min, _ = network.delays.bounds
        if estimator_window is None:
            self.arms = ArmStats(network.n_stations, prior_mean=d_min)
        else:
            from repro.bandits.windowed import WindowedArmStats

            self.arms = WindowedArmStats(
                network.n_stations, window=estimator_window, prior_mean=d_min
            )
        self.last_fractional: Optional[np.ndarray] = None
        self._lp_solver = None  # built lazily on the first decide()

    # ------------------------------------------------------------------ #

    def _solve_fractional(self, demands: np.ndarray) -> np.ndarray:
        """Lines 3-4: relax the ILP and return the `x*` matrix.

        A fractional assignment exists iff the aggregate compute demand
        fits the aggregate capacity, so when a burst (or an over-predicted
        demand vector) exceeds that, the demands are proportionally scaled
        for the *LP only* — the x* proportions still steer the rounding,
        and the realised overload is priced by the evaluator's
        processor-sharing penalty rather than by an infeasible solve.
        """
        total_need = float(demands.sum()) * self.network.c_unit_mhz
        budget = 0.95 * self.network.total_capacity_mhz()
        lp_demands = demands if total_need <= budget else demands * (budget / total_need)
        if self._lp_solver is None:
            # The LP's structure is fixed across the horizon; assemble it
            # once and patch coefficients per slot (~3x faster per solve,
            # identical solutions — see repro.core.fastlp).
            from repro.core.fastlp import PerSlotLpSolver

            self._lp_solver = PerSlotLpSolver(
                self.network, self.requests, warm_start=self._lp_warm_start
            )
        try:
            return self._lp_solver.solve(lp_demands, self.arms.means)
        except RuntimeError as error:
            raise RuntimeError(
                f"{error} — check the §III-E feasibility assumption "
                "(total capacity vs demand)"
            ) from error

    def _explore_mask(self, slot: int) -> np.ndarray:
        epsilon = self.exploration.epsilon(slot)
        if self.exploration.scope == "slot":
            explore = self._rng.uniform() < epsilon
            return np.full(self.n_requests, explore)
        return self._rng.uniform(size=self.n_requests) < epsilon

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is None:
            raise ValueError(
                "OL_GD is the given-demands algorithm (§IV); wrap it in "
                "OlRegController/OlGanController for unknown demands"
            )
        demands = np.asarray(demands, dtype=float)
        x_fractional = self._solve_fractional(demands)
        self.last_fractional = x_fractional
        with obs.span("olgd.candidates"):
            candidates = build_candidate_sets(x_fractional, self.gamma)
        with obs.span("olgd.sample"):
            stations = sample_assignment(
                x_fractional, candidates, self._rng, self._explore_mask(slot)
            )
        if self._repair:
            with obs.span("olgd.repair"):
                stations = repair_capacity(
                    stations,
                    x_fractional,
                    demands,
                    self.network.capacities_mhz,
                    self.network.c_unit_mhz,
                )
        return Assignment.from_stations(
            stations, self.requests, service_of=self.service_of
        )

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        """Line 11: update `theta_i` for every played arm."""
        with obs.span("olgd.arm_update"):
            played, observed = self.observed_delays(unit_delays, assignment)
            self.arms.observe_many(played.tolist(), observed.tolist())
        obs.inc("olgd.arms_played", len(played))

    def state_dict(self) -> Dict[str, Any]:
        """Learned arm statistics plus the rounding/exploration RNG.

        The LP solver is rebuilt lazily (it is a pure function of the
        fixed network/request topology), so it does not travel.
        """
        from repro.state.snapshot import rng_state

        return {"arms": self.arms.state_dict(), "rng": rng_state(self._rng)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from repro.state.snapshot import set_rng_state

        self.arms.load_state_dict(state["arms"])
        set_rng_state(self._rng, state["rng"])
