"""The controller interface every caching algorithm implements.

Per-slot protocol driven by :mod:`repro.sim.engine`:

1. ``decide(slot, demands)`` — choose this slot's assignment.  In the
   given-demands setting (§IV, Figs. 3-5) the engine passes the true
   demand vector; in the unknown-demands setting (§V, Figs. 6-7) it passes
   ``None`` and the controller must predict.
2. ``observe(slot, demands, unit_delays, assignment)`` — end-of-slot
   feedback: realised demands, realised `d_i(t)` (observable only for the
   *played* stations, which the controller must respect), and the
   assignment that was executed.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.assignment import Assignment
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["Controller"]


class Controller(abc.ABC):
    """Base class for per-slot caching/offloading controllers."""

    #: Display name used in figures and tables (matches the paper's labels).
    name: str = "controller"

    def __init__(self, network: MECNetwork, requests: Sequence[Request]):
        if not requests:
            raise ValueError("a controller needs at least one request")
        for position, request in enumerate(requests):
            if request.index != position:
                raise ValueError("request indices must be 0..|R|-1 in order")
            if request.service_index >= network.n_services:
                raise ValueError(
                    f"request {position} wants service {request.service_index} "
                    f"but the catalog has {network.n_services}"
                )
        self.network = network
        self.requests = list(requests)
        #: Precomputed per-request service indices; hot-path helpers
        #: (``Assignment.from_stations``) take this instead of re-deriving
        #: it from the request objects every slot.
        self.service_of: np.ndarray = np.fromiter(
            (r.service_index for r in self.requests),
            dtype=int,
            count=len(self.requests),
        )

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @abc.abstractmethod
    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        """Choose the slot's assignment; ``demands`` is None when unknown."""

    @abc.abstractmethod
    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        """Consume end-of-slot feedback."""

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable mutable state (see :mod:`repro.state`).

        The base controller is stateless; subclasses with learned state
        (arm statistics, predictors, RNG positions) override both methods.
        The network/request topology is construction config, not state —
        a resumed run rebuilds the same world and restores only what the
        controller learned.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""

    def observed_delays(
        self, unit_delays: np.ndarray, assignment: Assignment
    ) -> "tuple[np.ndarray, np.ndarray]":
        """The bandit feedback: `(stations_played, their d_i(t))`.

        Only stations that actually served a request reveal their delay
        (§IV-A: "the algorithm can observe the processing delay of bs_i
        only when its arm is played").
        """
        played = assignment.stations_used()
        return played, np.asarray(unit_delays, dtype=float)[played]
