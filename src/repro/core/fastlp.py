"""Structure-cached per-slot LP solving (performance substrate).

`OL_GD` solves one LP per slot whose *structure* never changes across a
horizon: the variables (every `x_{li}` and `y_{ki}`), the assignment rows
(Eq. 4), the coupling rows (Eq. 6) and the capacity row *pattern* (Eq. 5)
are fixed; only the objective coefficients (`rho_l(t) * theta_i`) and the
capacity coefficients (`rho_l(t) * C_unit`) move.  Rebuilding the model
from Python dictionaries every slot (as :func:`build_caching_model` does)
costs as much as the solve itself at the paper's scale.

:class:`PerSlotLpSolver` assembles the sparse matrices once and patches
the changing entries in place per slot — producing exactly the same LP
(verified against the reference builder in the property tests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro import obs
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["PerSlotLpSolver"]


class PerSlotLpSolver:
    """Reusable Eq. (3)-(8) relaxation for a fixed network + request set."""

    def __init__(self, network: MECNetwork, requests: Sequence[Request]):
        if not requests:
            raise ValueError("need at least one request")
        self._network = network
        self._requests = list(requests)
        R, S = len(requests), network.n_stations
        self._R, self._S = R, S

        needed_services = sorted({r.service_index for r in requests})
        self._pairs: List[Tuple[int, int]] = [
            (k, i) for k in needed_services for i in range(S)
        ]
        self._y_offset = R * S
        self._n_vars = R * S + len(self._pairs)
        y_column = {pair: self._y_offset + p for p, pair in enumerate(self._pairs)}

        # ---- objective: x part patched per slot, y part constant -------
        self._c = np.zeros(self._n_vars)
        for p, (k, i) in enumerate(self._pairs):
            self._c[self._y_offset + p] = (
                network.services.instantiation_delay(i, k) / R
            )

        # ---- A_ub: capacity rows (patched) then coupling rows (fixed) --
        rows, cols, data = [], [], []
        # Capacity (Eq. 5): row i, entries at x(l, i) with value rho_l*C_unit.
        # Store (row, col) in a deterministic order; remember the data slice.
        for i in range(S):
            for l in range(R):
                rows.append(i)
                cols.append(l * S + i)
                data.append(1.0)  # placeholder, patched per slot
        self._n_capacity_entries = len(data)
        # Coupling (Eq. 6, negated GE -> LE): x_li - y_ki <= 0.
        row = S
        for l, request in enumerate(self._requests):
            k = request.service_index
            for i in range(S):
                rows.append(row)
                cols.append(l * S + i)
                data.append(1.0)
                rows.append(row)
                cols.append(y_column[(k, i)])
                data.append(-1.0)
                row += 1
        n_ub_rows = S + R * S
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(n_ub_rows, self._n_vars)
        )
        # COO -> CSR reorders entries; keep COO so our data layout stays
        # ours, and convert with a stable mapping: build CSR manually from
        # the (sorted-by-row, insertion-stable) order above, which is
        # already row-major because we emitted rows in increasing order.
        self._a_ub = sparse.csr_matrix(matrix)
        # Recover the CSR data positions of the capacity entries:
        # they are the entries of rows < S at columns l*S+i; since each
        # capacity row i holds exactly R entries with strictly increasing
        # column order l*S+i (l = 0..R-1), CSR stores them contiguously.
        self._capacity_data_index = np.zeros((S, R), dtype=int)
        indptr, indices = self._a_ub.indptr, self._a_ub.indices
        for i in range(S):
            start, end = indptr[i], indptr[i + 1]
            row_cols = indices[start:end]
            # column l*S+i  ->  l
            l_of = (row_cols - i) // S
            self._capacity_data_index[i, l_of] = np.arange(start, end)

        # Capacity RHS is a snapshot; stations can change capacity between
        # slots (outages, recovery), so solve() re-reads the live values.
        self._b_ub = np.concatenate(
            [network.capacities_mhz, np.zeros(R * S)]
        )

        # ---- A_eq: assignment rows (all fixed) --------------------------
        eq_rows = np.repeat(np.arange(R), S)
        eq_cols = np.arange(R * S)
        self._a_eq = sparse.csr_matrix(
            (np.ones(R * S), (eq_rows, eq_cols)), shape=(R, self._n_vars)
        )
        self._b_eq = np.ones(R)
        self._bounds = [(0.0, 1.0)] * self._n_vars

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def solve(self, demands_mb: np.ndarray, theta_ms: np.ndarray) -> np.ndarray:
        """Solve the slot's relaxation; returns the `(|R|, |BS|)` x-matrix.

        Raises ``RuntimeError`` when the LP is not optimal (callers scale
        demands for aggregate feasibility first, as `OL_GD` does).
        """
        return self._solve(demands_mb, theta_ms)[0]

    def solve_with_objective(
        self, demands_mb: np.ndarray, theta_ms: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Like :meth:`solve`, also returning the optimal Eq. (3) objective.

        The objective value is what the clairvoyant comparator needs; it
        is unique even when the argmin is degenerate, so it matches the
        reference builder's objective exactly (up to solver tolerance).
        """
        x, objective = self._solve(demands_mb, theta_ms)
        return x, float(objective)

    def _solve(
        self, demands_mb: np.ndarray, theta_ms: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        R, S = self._R, self._S
        demands_mb = np.asarray(demands_mb, dtype=float)
        theta_ms = np.asarray(theta_ms, dtype=float)
        if demands_mb.shape != (R,):
            raise ValueError(f"demands must have shape ({R},), got {demands_mb.shape}")
        if theta_ms.shape != (S,):
            raise ValueError(f"theta must have shape ({S},), got {theta_ms.shape}")
        if np.any(demands_mb < 0):
            raise ValueError("demands must be non-negative")

        with obs.span("lp.patch"):
            # Patch the objective: c[x(l, i)] = rho_l * theta_i / R.
            self._c[: R * S] = (np.outer(demands_mb, theta_ms) / R).reshape(-1)
            # Patch the capacity coefficients: rho_l * C_unit.
            needs = demands_mb * self._network.c_unit_mhz
            # repro: allow[AG002] -- scipy.sparse CSC buffer, not a Tensor
            data = self._a_ub.data
            for i in range(S):
                data[self._capacity_data_index[i]] = needs
            # Re-patch the capacity RHS from the live stations: the snapshot
            # taken at construction goes stale when capacities change
            # mid-horizon (failure injection degrades/restores stations).
            self._b_ub[:S] = self._network.capacities_mhz

        with obs.span("lp.solve"):
            result = linprog(
                self._c,
                A_ub=self._a_ub,
                b_ub=self._b_ub,
                A_eq=self._a_eq,
                b_eq=self._b_eq,
                bounds=self._bounds,
                method="highs",
            )
        if result.status != 0:
            raise RuntimeError(
                f"per-slot LP failed (status {result.status}): {result.message}"
            )
        # HiGHS reports its simplex/IPM iteration count; fold it into the
        # registry so the stage-level cost has an algorithmic denominator.
        obs.inc("lp.iterations", int(getattr(result, "nit", 0)))
        x = np.clip(np.asarray(result.x[: R * S]), 0.0, 1.0)
        return x.reshape(R, S), float(result.fun)
