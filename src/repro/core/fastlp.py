"""Structure-cached per-slot LP solving (performance substrate).

`OL_GD` solves one LP per slot whose *structure* never changes across a
horizon: the variables (every `x_{li}` and `y_{ki}`), the assignment rows
(Eq. 4), the coupling rows (Eq. 6) and the capacity row *pattern* (Eq. 5)
are fixed; only the objective coefficients (`rho_l(t) * theta_i`) and the
capacity coefficients (`rho_l(t) * C_unit`) move.  Rebuilding the model
from Python dictionaries every slot (as :func:`build_caching_model` does)
costs as much as the solve itself at the paper's scale.

:class:`PerSlotLpSolver` assembles the sparse matrices once and patches
the changing entries in place per slot — producing exactly the same LP
(verified against the reference builder in the property tests).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro import obs
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["PerSlotLpSolver"]

#: A fractional x entry above this counts as part of the optimal support.
_SUPPORT_TOL = 1e-9

#: Extra columns kept per request when warm-starting: beyond the active
#: columns, each request keeps its cheapest stations by reduced cost so
#: the restricted LP can re-balance when demands shift.  A bare-support
#: restriction (one column per request at an integral vertex) is fully
#: pinned and so degenerate that its duals almost never certify
#: optimality, driving the hit rate to zero.  12 columns per request is
#: the sweep optimum: 8 leaves capacity-driven support shifts outside the
#: restriction (misses), while wider pads converge the restricted LP
#: toward the full one and erode the win.
_SUPPORT_PER_REQUEST = 12

#: Column-generation rounds a warm solve may spend growing the support
#: before falling back to a cold full solve.  1 is the wall-clock
#: optimum: when the padded support misses, the shifted optimum usually
#: needs columns that only the *next* restricted duals would price in, so
#: extra rounds mostly add restricted-solve cost on top of the inevitable
#: cold fallback.
_WARM_ROUNDS = 1


# repro: allow[STATE001] -- only mutates the warm-start support and solver scratch buffers, ephemeral hints rebuilt by the first cold solve after resume
class PerSlotLpSolver:
    """Reusable Eq. (3)-(8) relaxation for a fixed network + request set.

    ``warm_start=True`` enables incremental re-solving across slots: the
    support (the x columns active in the previous optimum, plus every y
    column) seeds a *restricted* LP with ~``|R| + |pairs|`` variables
    instead of ``|R| x |BS|``; its duals then price every excluded column,
    and only when some excluded column has a negative reduced cost does
    the solver fall back to a cold full solve (which refreshes the
    support).  An accepted warm solution is exactly optimal for the full
    LP — primal-feasible by construction, dual-feasible by the pricing
    check — but may sit on a *different* optimal vertex than the cold
    path when the optimum is degenerate, so warm-started runs are not
    bit-identical to cold ones (objective values agree to solver
    tolerance; see the equivalence tests).  Off by default.
    """

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        *,
        warm_start: bool = False,
    ):
        if not requests:
            raise ValueError("need at least one request")
        self._warm_start = bool(warm_start)
        self._support: Optional[np.ndarray] = None
        self._network = network
        self._requests = list(requests)
        R, S = len(requests), network.n_stations
        self._R, self._S = R, S

        needed_services = sorted({r.service_index for r in requests})
        self._pairs: List[Tuple[int, int]] = [
            (k, i) for k in needed_services for i in range(S)
        ]
        self._y_offset = R * S
        self._n_vars = R * S + len(self._pairs)
        y_column = {pair: self._y_offset + p for p, pair in enumerate(self._pairs)}
        # x column l*S+i -> index of its (service_l, i) pair; the warm-start
        # pricing repair folds per-column dual deficits onto pairs.
        pair_index = {pair: p for p, pair in enumerate(self._pairs)}
        self._pair_of_col = np.fromiter(
            (
                pair_index[(r.service_index, i)]
                for r in self._requests
                for i in range(S)
            ),
            dtype=int,
            count=R * S,
        )

        # ---- objective: x part patched per slot, y part constant -------
        self._c = np.zeros(self._n_vars, dtype=np.float64)
        for p, (k, i) in enumerate(self._pairs):
            self._c[self._y_offset + p] = (
                network.services.instantiation_delay(i, k) / R
            )

        # ---- A_ub: capacity rows (patched) then coupling rows (fixed) --
        rows, cols, data = [], [], []
        # Capacity (Eq. 5): row i, entries at x(l, i) with value rho_l*C_unit.
        # Store (row, col) in a deterministic order; remember the data slice.
        for i in range(S):
            for l in range(R):
                rows.append(i)
                cols.append(l * S + i)
                data.append(1.0)  # placeholder, patched per slot
        # Coupling (Eq. 6, negated GE -> LE): x_li - y_ki <= 0.
        row = S
        for l, request in enumerate(self._requests):
            k = request.service_index
            for i in range(S):
                rows.append(row)
                cols.append(l * S + i)
                data.append(1.0)
                rows.append(row)
                cols.append(y_column[(k, i)])
                data.append(-1.0)
                row += 1
        n_ub_rows = S + R * S
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(n_ub_rows, self._n_vars)
        )
        # CSC: HiGHS consumes columns, and the warm path slices columns
        # (`A[:, cols]`), so column-major storage avoids a format
        # conversion per solve.  It also makes the capacity patch a single
        # fancy assignment: each x column l*S+i holds exactly two entries
        # — capacity row i and coupling row S+l*S+i — and after
        # sort_indices() the capacity entry (row i < S <= S+l*S+i) sits
        # first, at data position indptr[l*S+i].
        self._a_ub = sparse.csc_matrix(matrix)
        self._a_ub.sort_indices()
        # [i, l] = data index of the capacity coefficient for x(l, i);
        # shape (S, R) so assigning the (R,) per-slot needs broadcasts
        # across stations in one shot.
        self._capacity_data_index = (
            np.asarray(self._a_ub.indptr[: R * S], dtype=np.int64)
            .reshape(R, S)
            .T.copy()
        )
        # With two entries per x column the capacity coefficients sit at
        # the *even* data positions of the first R*S columns, so the
        # per-slot patch can write through a strided view instead of a
        # fancy-index gather (~7x cheaper at paper scale).
        if not np.array_equal(
            self._a_ub.indptr[: R * S + 1], 2 * np.arange(R * S + 1)
        ):
            raise AssertionError(
                "x columns must hold exactly (capacity, coupling) entries"
            )
        # repro: allow[AG002] -- scipy.sparse CSC buffer, not a Tensor
        data = self._a_ub.data
        #: (R, S) view of the capacity coefficients: [l, i] aliases the
        #: data slot of x(l, i)'s capacity entry.
        self._capacity_view = data[: 2 * R * S : 2].reshape(R, S)

        # Capacity RHS is a snapshot; stations can change capacity between
        # slots (outages, recovery), so solve() re-reads the live values.
        self._b_ub = np.concatenate(
            [network.capacities_mhz, np.zeros(R * S, dtype=np.float64)]
        )

        # ---- A_eq: assignment rows (all fixed) --------------------------
        eq_rows = np.repeat(np.arange(R), S)
        eq_cols = np.arange(R * S)
        self._a_eq = sparse.csc_matrix(
            (np.ones(R * S, dtype=np.float64), (eq_rows, eq_cols)),
            shape=(R, self._n_vars),
        )
        self._b_eq = np.ones(R, dtype=np.float64)
        # A single (lo, hi) pair applies to every variable; building the
        # n_vars-long list of identical tuples per instance was pure
        # allocation overhead.
        self._bounds = (0.0, 1.0)

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def solve(self, demands_mb: np.ndarray, theta_ms: np.ndarray) -> np.ndarray:
        """Solve the slot's relaxation; returns the `(|R|, |BS|)` x-matrix.

        Raises ``RuntimeError`` when the LP is not optimal (callers scale
        demands for aggregate feasibility first, as `OL_GD` does).
        """
        return self._solve(demands_mb, theta_ms)[0]

    def solve_with_objective(
        self, demands_mb: np.ndarray, theta_ms: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Like :meth:`solve`, also returning the optimal Eq. (3) objective.

        The objective value is what the clairvoyant comparator needs; it
        is unique even when the argmin is degenerate, so it matches the
        reference builder's objective exactly (up to solver tolerance).
        """
        x, objective = self._solve(demands_mb, theta_ms)
        return x, float(objective)

    def _solve(
        self, demands_mb: np.ndarray, theta_ms: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        R, S = self._R, self._S
        demands_mb = np.asarray(demands_mb, dtype=np.float64)
        theta_ms = np.asarray(theta_ms, dtype=np.float64)
        if demands_mb.shape != (R,):
            raise ValueError(f"demands must have shape ({R},), got {demands_mb.shape}")
        if theta_ms.shape != (S,):
            raise ValueError(f"theta must have shape ({S},), got {theta_ms.shape}")
        if np.any(demands_mb < 0):
            raise ValueError("demands must be non-negative")

        with obs.span("lp.patch"):
            # Patch the objective: c[x(l, i)] = rho_l * theta_i / R.
            self._c[: R * S] = (np.outer(demands_mb, theta_ms) / R).reshape(-1)
            # Patch the capacity coefficients: rho_l * C_unit.
            needs = demands_mb * self._network.c_unit_mhz
            self._capacity_view[:] = needs[:, None]
            # Re-patch the capacity RHS from the live stations: the snapshot
            # taken at construction goes stale when capacities change
            # mid-horizon (failure injection degrades/restores stations).
            self._b_ub[:S] = self._network.capacities_mhz

        if self._warm_start and self._support is not None:
            warm = self._warm_solve()
            if warm is not None:
                obs.inc("lp.warm_hits", 1)
                x_full, objective = warm
                x = np.clip(x_full[: R * S], 0.0, 1.0)
                return x.reshape(R, S), float(objective)
            obs.inc("lp.warm_misses", 1)

        with obs.span("lp.solve"):
            result = linprog(
                self._c,
                A_ub=self._a_ub,
                b_ub=self._b_ub,
                A_eq=self._a_eq,
                b_eq=self._b_eq,
                bounds=self._bounds,
                method="highs",
            )
        if result.status != 0:
            raise RuntimeError(
                f"per-slot LP failed (status {result.status}): {result.message}"
            )
        # HiGHS reports its simplex/IPM iteration count; fold it into the
        # registry so the stage-level cost has an algorithmic denominator.
        obs.inc("lp.iterations", int(getattr(result, "nit", 0)))
        if self._warm_start:
            self._update_support(result)
        x = np.clip(np.asarray(result.x[: R * S]), 0.0, 1.0)
        return x.reshape(R, S), float(result.fun)

    def _update_support(self, result: Any) -> None:
        """Active x columns of the full-LP optimum, padded per request.

        Keeps every column with positive mass plus each request's
        ``_SUPPORT_PER_REQUEST`` cheapest columns by reduced cost
        (HiGHS's ``lower.marginals``) — near-optimal alternates the next
        slot's restricted LP may need.
        """
        x = np.asarray(result.x[: self._y_offset])
        rc = np.asarray(result.lower.marginals[: self._y_offset])
        keep = x > _SUPPORT_TOL
        m = min(self._S, _SUPPORT_PER_REQUEST)
        order = np.argsort(rc.reshape(self._R, self._S), axis=1)[:, :m]
        keep.reshape(self._R, self._S)[np.arange(self._R)[:, None], order] = True
        self._support = np.nonzero(keep)[0]

    def _warm_solve(self) -> Optional[Tuple[np.ndarray, float]]:
        """Column generation over the previous support.

        Each round solves the LP restricted to the support's x columns
        plus every y column, then prices the excluded x columns with the
        restricted duals: ``rc = c - A_ub^T y_ub - A_eq^T y_eq``
        (verified against HiGHS's ``lower.marginals``).  Columns that
        price in are added to the support and the restricted LP is
        re-solved; when none remain the restricted optimum is optimal
        for the full LP and is accepted.  After ``_WARM_ROUNDS`` rounds
        the caller falls back to a cold full solve (which also refreshes
        the support).

        Pricing is repaired for dual degeneracy before rejecting: HiGHS
        leaves zero duals on the coupling rows of excluded columns (they
        read ``-y_ki <= 0`` in the restricted LP), under-pricing those
        columns.  Because coupling rows have b = 0, dual mass can be
        pushed onto them freely — lifting x_li's reduced cost by delta
        costs the matching y_ki column exactly delta of its reduced-cost
        slack — so the repaired duals certify optimality by weak duality
        iff every pair's total deficit fits inside its y slack (a y that
        is basic or at its upper bound has none: conservative).
        """
        assert self._support is not None
        support = self._support
        y_cols = np.arange(self._y_offset, self._n_vars)
        for _ in range(_WARM_ROUNDS):
            cols = np.concatenate([support, y_cols])
            with obs.span("lp.solve"):
                result = linprog(
                    self._c[cols],
                    A_ub=self._a_ub[:, cols],
                    b_ub=self._b_ub,
                    A_eq=self._a_eq[:, cols],
                    b_eq=self._b_eq,
                    bounds=(0.0, 1.0),
                    method="highs",
                )
            if result.status != 0:
                return None  # restricted LP infeasible (support too small)
            obs.inc("lp.iterations", int(getattr(result, "nit", 0)))
            y_ub = np.asarray(result.ineqlin.marginals)
            y_eq = np.asarray(result.eqlin.marginals)
            reduced = np.asarray(
                self._c - self._a_ub.T @ y_ub - self._a_eq.T @ y_eq
            )
            rc_x = reduced[: self._y_offset]
            excluded = np.ones(self._y_offset, dtype=bool)
            excluded[support] = False
            tol = 1e-8 * max(1.0, float(np.abs(self._c).max()))
            deficit_cols = np.nonzero(excluded & (rc_x < -tol))[0]
            if deficit_cols.size:
                deficiency = np.bincount(
                    self._pair_of_col[deficit_cols],
                    weights=-rc_x[deficit_cols],
                    minlength=len(self._pairs),
                )
                rc_y = reduced[self._y_offset :]
                if bool(np.any(deficiency > rc_y + tol)):
                    # Columns genuinely price in: grow the support and
                    # re-solve the (still much smaller) restricted LP.
                    support = np.union1d(support, deficit_cols)
                    continue
            # Optimal for the full LP.  The (possibly grown) support
            # carries to the next slot; a future miss's cold solve
            # re-shrinks it.
            self._support = support
            x_full = np.zeros(self._n_vars, dtype=np.float64)
            x_full[cols] = result.x
            return x_full, float(result.fun)
        return None
