"""Candidate sets, probabilistic rounding and capacity repair (§IV-B).

From the fractional LP solution `x*`, Algorithm 1 builds per-request
candidate sets `BS_l^candi = {bs_i | x*_li >= gamma}` (Eq. 9), assigns each
request to a candidate with probability proportional to `x*_li`, and
explores outside the candidate set with probability `eps_t`.

The paper's sampling can violate the capacity constraint (Eq. 5) because
requests are rounded independently; :func:`repair_capacity` restores
feasibility deterministically by moving the smallest-probability requests
off overloaded stations onto their next-best candidates (DESIGN.md §5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require_probability

__all__ = ["build_candidate_sets", "sample_assignment", "repair_capacity"]


def build_candidate_sets(x_fractional: np.ndarray, gamma: float) -> List[np.ndarray]:
    """Per-request candidate station sets (Eq. 9).

    When no station reaches the threshold for a request (possible when its
    mass is spread thinly), the argmax station is used so the set is never
    empty.
    """
    require_probability("gamma", gamma)
    x = np.asarray(x_fractional, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be a (|R|, |BS|) matrix, got shape {x.shape}")
    candidates: List[np.ndarray] = []
    for row in x:
        chosen = np.nonzero(row >= gamma)[0]
        if chosen.size == 0:
            chosen = np.array([int(np.argmax(row))])
        candidates.append(chosen)
    return candidates


def sample_assignment(
    x_fractional: np.ndarray,
    candidates: Sequence[np.ndarray],
    rng: np.random.Generator,
    explore_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw a station per request (Algorithm 1 lines 5-9).

    Requests with ``explore_mask[l] == True`` are assigned a uniform-random
    station *outside* their candidate set (line 9; falls back to the whole
    station range when the candidate set already covers every station);
    all others sample within their candidate set with probability
    proportional to `x*_li` (line 7).
    """
    x = np.asarray(x_fractional, dtype=float)
    if not np.isfinite(x).all():
        raise ValueError(
            "x contains non-finite values — the LP solve failed upstream; "
            "check solution status before rounding"
        )
    n_requests, n_stations = x.shape
    if len(candidates) != n_requests:
        raise ValueError(
            f"need one candidate set per request ({n_requests}), got {len(candidates)}"
        )
    if explore_mask is None:
        explore_mask = np.zeros(n_requests, dtype=bool)
    explore_mask = np.asarray(explore_mask, dtype=bool)
    if explore_mask.shape != (n_requests,):
        raise ValueError(
            f"explore_mask must have shape ({n_requests},), got {explore_mask.shape}"
        )

    stations = np.empty(n_requests, dtype=int)
    for l in range(n_requests):
        candidate_set = candidates[l]
        if explore_mask[l]:
            outside = np.setdiff1d(np.arange(n_stations), candidate_set)
            pool = outside if outside.size else np.arange(n_stations)
            stations[l] = int(rng.choice(pool))
            continue
        weights = x[l, candidate_set]
        total = weights.sum()
        if total <= 0:
            stations[l] = int(rng.choice(candidate_set))
        else:
            stations[l] = int(rng.choice(candidate_set, p=weights / total))
    return stations


def repair_capacity(
    stations: np.ndarray,
    x_fractional: np.ndarray,
    demands_mb: np.ndarray,
    capacities_mhz: np.ndarray,
    c_unit_mhz: float,
) -> np.ndarray:
    """Restore Eq. (5) feasibility after independent rounding.

    Deterministic water-filling: stations are processed in decreasing
    overload order; from each overloaded station, its assigned requests
    are moved in increasing `x*_li` order (least-committed first) to the
    feasible station where they have the highest fractional mass.  If no
    station can absorb a request without overloading, it stays put — the
    overload penalty in :func:`repro.core.assignment.evaluate_assignment`
    then prices the violation instead of crashing the slot.
    """
    stations = np.asarray(stations, dtype=int).copy()
    x = np.asarray(x_fractional, dtype=float)
    demands_mb = np.asarray(demands_mb, dtype=float)
    capacities_mhz = np.asarray(capacities_mhz, dtype=float)
    n_requests, n_stations = x.shape

    loads = np.zeros(n_stations)
    np.add.at(loads, stations, demands_mb * c_unit_mhz)

    # Iterate until no station is overloaded or nothing can move.
    for _ in range(n_stations):
        overloaded = np.nonzero(loads > capacities_mhz + 1e-9)[0]
        if overloaded.size == 0:
            break
        moved_any = False
        order = overloaded[np.argsort(-(loads[overloaded] - capacities_mhz[overloaded]))]
        for station in order:
            assigned = np.nonzero(stations == station)[0]
            # Move least-committed requests first.
            for l in assigned[np.argsort(x[assigned, station])]:
                if loads[station] <= capacities_mhz[station] + 1e-9:
                    break
                need = demands_mb[l] * c_unit_mhz
                # Best alternative by fractional mass among stations with room.
                room = capacities_mhz - loads >= need - 1e-9
                room[station] = False
                if not np.any(room):
                    continue
                alternatives = np.nonzero(room)[0]
                target = alternatives[int(np.argmax(x[l, alternatives]))]
                stations[l] = target
                loads[station] -= need
                loads[target] += need
                moved_any = True
        if not moved_any:
            break
    return stations
