"""Lemma 1 and Theorem 1: the paper's analytical bounds, as code.

These let the ablation benchmark overlay the *measured* cumulative regret
with the paper's bound `sigma * log((T-1) / (e^(1/c) + 1))` and check that
the measurement never exceeds it (up to the additive transient of parts
(1)-(2) of the proof).
"""

from __future__ import annotations

import math

from repro.utils.validation import require_positive, require_probability

__all__ = ["lemma1_gap", "theorem1_regret_bound"]


def lemma1_gap(
    n_requests: int,
    d_max_ms: float,
    d_min_ms: float,
    delta_ins_ms: float,
    gamma: float,
) -> float:
    """The gap `sigma` between optimal and worst caching (Lemma 1).

    sigma = max( |R| * (d_max - gamma * d_min + Delta_ins),
                 |R| * gamma * (1 - e^(-2 * gamma * |R|^2)) + Delta_ins )

    where `Delta_ins` is the spread of instantiation delays.
    """
    require_positive("n_requests", n_requests)
    require_positive("d_max_ms", d_max_ms)
    require_positive("d_min_ms", d_min_ms)
    if d_min_ms > d_max_ms:
        raise ValueError(f"d_min {d_min_ms} exceeds d_max {d_max_ms}")
    if delta_ins_ms < 0:
        raise ValueError("delta_ins_ms must be >= 0")
    require_probability("gamma", gamma)
    case1 = n_requests * (d_max_ms - gamma * d_min_ms + delta_ins_ms)
    case2 = (
        n_requests * gamma * (1.0 - math.exp(-2.0 * gamma * n_requests**2))
        + delta_ins_ms
    )
    return max(case1, case2)


def theorem1_regret_bound(sigma: float, horizon: int, c: float) -> float:
    """Theorem 1: expected regret <= `sigma * log((T-1) / (e^(1/c) + 1))`.

    Only meaningful once the horizon clears the exploration transient
    `e^(1/c) + 1`; below that the logarithm is negative and the bound is
    reported as 0 (the transient regret is covered by the additive
    `sigma * e^(1/c)` of the proof's parts (1)-(2)).
    """
    require_positive("sigma", sigma)
    require_positive("horizon", horizon)
    require_probability("c", c)
    if c == 0.0:
        raise ValueError("c must satisfy 0 < c < 1 (Theorem 1)")
    threshold = math.exp(1.0 / c) + 1.0
    if horizon - 1 <= threshold:
        return 0.0
    return sigma * math.log((horizon - 1) / threshold)
