"""Algorithm 2 — `OL_GAN`: Info-RNN-GAN prediction + the OL_GD core.

Per slot (Algorithm 2): the generator predicts each request's data volume
(lines 2-4), the LP relaxation / candidate-set / epsilon-greedy machinery
of Algorithm 1 produces the caching and assignment (lines 5-13), and after
the slot the discriminator observes the real data volumes and the model is
refined (lines 14-15, realised by the predictor's online steps).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.assignment import Assignment
from repro.core.controller import Controller
from repro.core.ol_gd import ExplorationConfig, OlGdController
from repro.gan.predictor import GanDemandPredictor
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.workload.features import encode_request_locations

__all__ = ["OlGanController"]


class OlGanController(Controller):
    """`OL_GAN` (Algorithm 2).

    Parameters
    ----------
    n_hotspots:
        Size of the location vocabulary for the latent code `c` (the
        encoder adds one "no hotspot" slot).
    warmup_history:
        Optional small sample of historical demand, shape
        ``(T0, |R|)``, used to pre-train the GAN before the horizon
        starts (the paper's "small samples of hidden features").
    inner_rng:
        Optional separate stream for the inner OL_GD's rounding and
        exploration.  Passing the *same-seeded* stream to a paired
        `OL_Reg` run gives common random numbers: both controllers make
        identical exploration draws, so the measured delay difference is
        attributable to prediction quality alone (how Fig. 6/7 are run).
    gan_kwargs:
        Extra keyword arguments forwarded to
        :class:`repro.gan.GanDemandPredictor` (window, hidden_size,
        online_steps, ...).
    """

    name = "OL_GAN"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
        *,
        n_hotspots: int,
        warmup_history: Optional[np.ndarray] = None,
        gamma: float = 0.1,
        exploration: Optional[ExplorationConfig] = None,
        inner_rng: Optional[np.random.Generator] = None,
        **gan_kwargs: Any,
    ):
        super().__init__(network, requests)
        codes = encode_request_locations(requests, n_hotspots)
        self.predictor = GanDemandPredictor(
            codes, rng, warmup_history=warmup_history, **gan_kwargs
        )
        self.inner = OlGdController(
            network,
            requests,
            inner_rng if inner_rng is not None else rng,
            gamma=gamma,
            exploration=exploration,
        )
        self._basic = np.array([r.basic_demand_mb for r in requests])

    @property
    def last_prediction(self) -> Optional[np.ndarray]:
        """The demand vector used for the most recent decision."""
        return getattr(self, "_last_prediction", None)

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is not None:
            raise ValueError(
                "OL_GAN is the unknown-demands algorithm; the engine must "
                "pass demands=None and let the generator predict"
            )
        with obs.span("gan.predict"):
            if self.predictor.n_observed == 0:
                predicted = self._basic.copy()
            else:
                predicted = np.maximum(self.predictor.predict_next(), self._basic)
        self._last_prediction = predicted
        return self.inner.decide(slot, predicted)

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        self.inner.observe(slot, demands, unit_delays, assignment)
        # Algorithm 2 lines 14-15: the per-slot GAN refinement — usually
        # the dominant observe-side cost, hence its own span.
        with obs.span("gan.refine"):
            self.predictor.observe(np.asarray(demands, dtype=float))

    def state_dict(self) -> Dict[str, Any]:
        """The full GAN predictor plus the inner OL_GD learner."""
        return {
            "predictor": self.predictor.state_dict(),
            "inner": self.inner.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.predictor.load_state_dict(state["predictor"])
        self.inner.load_state_dict(state["inner"])
