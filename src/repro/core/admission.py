"""Admission control: deferring requests when a burst exceeds capacity.

The paper assumes "the accumulative resources of all base stations is
higher than the total resource demand of all requests" (§III-E).  Real
bursts violate that; the shipped `OL_GD` then scales the LP's demand view
and lets the overload penalty price the violation.  This module provides
the *other* standard answer — admit a feasible subset and defer the rest
to the next slot (or the remote cloud):

:func:`select_admissible` picks the admitted set given demands and a
capacity budget: ``"greedy-value"`` keeps the most valuable volume per
MHz; ``"smallest-first"`` maximises the *count* of admitted requests
(exchange-argument optimal for counting).  Deferred requests can be
priced at the remote data center
(:func:`repro.mec.datacenter.cloud_only_delay_ms`) or retried next slot —
composition is left to the caller, keeping this primitive policy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["AdmissionDecision", "select_admissible"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Which requests were admitted this slot."""

    admitted: Tuple[int, ...]
    deferred: Tuple[int, ...]

    @property
    def n_admitted(self) -> int:
        return len(self.admitted)

    @property
    def n_deferred(self) -> int:
        return len(self.deferred)


def select_admissible(
    demands_mb: np.ndarray,
    capacity_budget_mhz: float,
    c_unit_mhz: float,
    policy: str = "smallest-first",
    values: Optional[np.ndarray] = None,
) -> AdmissionDecision:
    """Choose a subset of requests whose compute fits the budget.

    Policies:

    * ``"smallest-first"`` — admit in increasing demand order; maximises
      the number of admitted requests (classic exchange argument).
    * ``"greedy-value"`` — admit in decreasing ``value / demand`` order;
      ``values`` defaults to the demands themselves (volume served).

    Always returns a feasible set; a request whose lone demand exceeds the
    whole budget is deferred.
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    if demands_mb.ndim != 1:
        raise ValueError(f"demands must be a vector, got shape {demands_mb.shape}")
    if np.any(demands_mb < 0):
        raise ValueError("demands must be non-negative")
    if capacity_budget_mhz < 0:
        raise ValueError("capacity_budget_mhz must be >= 0")
    if c_unit_mhz <= 0:
        raise ValueError("c_unit_mhz must be > 0")
    if policy not in ("smallest-first", "greedy-value"):
        raise ValueError(
            f"policy must be 'smallest-first' or 'greedy-value', got {policy!r}"
        )
    n = demands_mb.shape[0]
    if values is not None:
        values = np.asarray(values, dtype=float)
        if values.shape != demands_mb.shape:
            raise ValueError(
                f"values shape {values.shape} must match demands {demands_mb.shape}"
            )
    if policy == "smallest-first":
        order = np.argsort(demands_mb, kind="stable")
    else:
        effective = values if values is not None else demands_mb
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(demands_mb > 0, effective / demands_mb, np.inf)
        order = np.argsort(-density, kind="stable")

    admitted: List[int] = []
    deferred: List[int] = []
    remaining = float(capacity_budget_mhz)
    for index in order:
        need = demands_mb[index] * c_unit_mhz
        if need <= remaining + 1e-9:
            admitted.append(int(index))
            remaining -= need
        else:
            deferred.append(int(index))
    return AdmissionDecision(
        admitted=tuple(sorted(admitted)), deferred=tuple(sorted(deferred))
    )
