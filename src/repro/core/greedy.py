"""`Greedy_GD` baseline (§VI): per-request greedy, historical means only.

"Each base station greedily selects a service and its tasks that could
minimize the delay of each request, assuming that the data volume of each
request is given" — and, per the experiments discussion, it caches and
offloads "according to the historical information of processing latencies"
with no exploration.  Concretely: requests are processed in index order;
each picks the station minimising its estimated marginal cost

    rho_l * theta_hat_i + d_ins[i, k]  (if service k not yet cached at i)

subject to remaining capacity; `theta_hat_i` is the running mean of the
delays this controller has itself observed (pure exploitation — the
ignorance of delay uncertainty the paper blames for its poor performance).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bandits.arms import ArmStats
from repro.core.assignment import Assignment
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["GreedyController"]


class GreedyController(Controller):
    """`Greedy_GD`: myopic assignment by historical delay means."""

    name = "Greedy_GD"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
    ):
        super().__init__(network, requests)
        self._rng = rng
        d_min, d_max = network.delays.bounds
        self.arms = ArmStats(network.n_stations, prior_mean=(d_min + d_max) / 2.0)

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is None:
            raise ValueError("Greedy_GD assumes given demands (§VI benchmarks)")
        demands = np.asarray(demands, dtype=float)
        theta = self.arms.means
        capacities = self.network.capacities_mhz.copy()
        cached: Set[Tuple[int, int]] = set()
        stations = np.empty(self.n_requests, dtype=int)

        for l, request in enumerate(self.requests):
            need = demands[l] * self.network.c_unit_mhz
            best_station, best_cost = -1, np.inf
            for i in range(self.network.n_stations):
                if capacities[i] < need:
                    continue
                cost = demands[l] * theta[i]
                if (request.service_index, i) not in cached:
                    cost += self.network.services.instantiation_delay(
                        i, request.service_index
                    )
                if cost < best_cost:
                    best_station, best_cost = i, cost
            if best_station < 0:
                # No station has room: drop onto the least-loaded station
                # and let the overload penalty price it.
                best_station = int(np.argmax(capacities))
            stations[l] = best_station
            capacities[best_station] -= need
            cached.add((request.service_index, best_station))

        return Assignment.from_stations(
            stations, self.requests, service_of=self.service_of
        )

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        played, observed = self.observed_delays(unit_delays, assignment)
        self.arms.observe_many(played.tolist(), observed.tolist())

    def state_dict(self) -> Dict[str, Any]:
        from repro.state.snapshot import rng_state

        return {"arms": self.arms.state_dict(), "rng": rng_state(self._rng)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from repro.state.snapshot import set_rng_state

        self.arms.load_state_dict(state["arms"])
        set_rng_state(self._rng, state["rng"])
