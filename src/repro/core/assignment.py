"""Assignments and their realised cost (the paper's objective, Eq. 3).

An :class:`Assignment` says which base station serves each request in one
slot; the services cached at a station follow from the requests assigned
there (constraint 6: `y_{ki} >= x_{li}`).

:func:`evaluate_assignment` computes the realised average delay under the
slot's true demands and unit delays:

    cost = (1/|R|) * ( sum_l rho_l(t) * d_{i(l)}(t) * overload_{i(l)}
                       + sum_{(k,i) cached} d_ins[i,k] )

The overload factor extends Eq. (3) to the prediction setting: a station
whose assigned compute demand exceeds its capacity processes at a
proportionally slower rate (processor sharing), so under-predicted demand
translates into extra delay.  With feasible loads the factor is exactly 1
and the cost coincides with Eq. (3).

:class:`SlotEvaluator` is the batched formulation of the same cost for a
fixed network + request set: the per-run constants (capacities, the
`d_ins` matrix, each request's service index) are assembled once — in an
opt-in ``dtype`` — and each slot reduces to a handful of vectorised
passes over the request vector.  :func:`evaluate_assignment` remains the
one-shot functional spelling and delegates to a throwaway evaluator, so
both paths share one cost definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence, Tuple, Union

import numpy as np

from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["Assignment", "SlotEvaluator", "evaluate_assignment"]


def service_indices(requests: Sequence[Request]) -> np.ndarray:
    """Vector of ``service_index`` per request (the `k` of each `r_l`)."""
    return np.fromiter(
        (r.service_index for r in requests), dtype=int, count=len(requests)
    )


@dataclass
# repro: allow[STATE001] -- only mutates _cached_pairs, a lazy view of the frozen `cached` field; rebuilt bit-identically after resume
class Assignment:
    """Per-slot caching/offloading decision.

    Attributes
    ----------
    station_of:
        ``station_of[l]`` is the base-station index serving request ``l``.
    cached:
        The `(service, station)` pairs with a live instance this slot.
    """

    station_of: np.ndarray
    cached: FrozenSet[Tuple[int, int]]
    #: Lazily-built ``(n_pairs, 2)`` int array of the ``cached`` pairs in
    #: sorted order; computed once by :meth:`cached_array`.
    _cached_pairs: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_stations(
        cls,
        station_of: Sequence[int],
        requests: Sequence[Request],
        *,
        service_of: Optional[np.ndarray] = None,
    ) -> "Assignment":
        """Build an assignment, deriving the cache set from constraint (6).

        ``service_of`` optionally supplies the precomputed per-request
        service-index vector (see :func:`service_indices`); controllers on
        the hot path pass their cached copy so the cache-set derivation is
        a single ``np.unique`` over integer pairs instead of a per-request
        python loop.
        """
        stations = np.asarray(station_of, dtype=int)
        if stations.shape != (len(requests),):
            raise ValueError(
                f"need one station per request ({len(requests)}), got "
                f"shape {stations.shape}"
            )
        if np.any(stations < 0):
            raise ValueError("station indices must be non-negative")
        if service_of is None:
            service_of = service_indices(requests)
        # Distinct (service, station) pairs via a presence bincount over
        # packed codes — O(|R| + #codes) instead of the O(|R| log |R|)
        # sort ``np.unique`` costs, and the code range is tiny (services
        # x stations).  Codes sort lexicographically as (service,
        # station), so the derived pair array keeps np.unique's order.
        base = int(stations.max()) + 1 if stations.size else 1
        codes = np.nonzero(np.bincount(service_of * base + stations))[0]
        pairs = np.stack([codes // base, codes % base], axis=1)
        cached = frozenset((int(k), int(i)) for k, i in pairs)
        return cls(station_of=stations, cached=cached, _cached_pairs=pairs)

    @property
    def n_requests(self) -> int:
        return int(self.station_of.shape[0])

    def stations_used(self) -> np.ndarray:
        """Sorted unique station indices serving at least one request."""
        return np.unique(self.station_of)

    def cached_array(self) -> np.ndarray:
        """The ``cached`` pairs as a sorted ``(n_pairs, 2)`` int array."""
        if self._cached_pairs is None:
            self._cached_pairs = np.array(
                sorted(self.cached), dtype=int
            ).reshape(len(self.cached), 2)
        return self._cached_pairs

    def loads_mhz(self, demands_mb: np.ndarray, c_unit_mhz: float, n_stations: int) -> np.ndarray:
        """Compute load per station: ``sum_l x_li * rho_l * C_unit`` (Eq. 5 LHS).

        A single ``bincount`` scatter-add over the request vector —
        bit-identical to the former ``np.add.at`` accumulation (both sum
        per station in request order) and much faster at large |R|.

        Floating inputs keep their dtype (so the float32 evaluator path
        computes its weights without a round-trip through float64);
        integer demand vectors are promoted to float64.
        """
        demands_mb = np.asarray(demands_mb)
        if demands_mb.dtype.kind != "f":
            demands_mb = demands_mb.astype(np.float64)
        if demands_mb.shape != (self.n_requests,):
            raise ValueError(
                f"demand vector must have shape ({self.n_requests},), "
                f"got {demands_mb.shape}"
            )
        if self.station_of.size and int(self.station_of.max()) >= n_stations:
            raise ValueError(
                f"assignment references station {int(self.station_of.max())} "
                f"but only {n_stations} stations exist"
            )
        return np.bincount(
            self.station_of,
            weights=demands_mb * c_unit_mhz,
            minlength=n_stations,
        )

    def cache_churn(self, previous: "Assignment") -> int:
        """How many instances this slot are *new* relative to ``previous``."""
        return len(self.cached - previous.cached)


# repro: allow[STATE001] -- only mutates _capacities, a cast of the live network's vector; refresh_capacities() re-reads it after resume
class SlotEvaluator:
    """Structure-cached Eq. (3) evaluation for a fixed network + request set.

    Mirrors :class:`repro.core.fastlp.PerSlotLpSolver`: everything that
    does not change across a horizon (station capacities, the `d_ins`
    instantiation matrix, each request's service index) is assembled once,
    so the per-slot evaluation is pure vectorised numpy over the request
    vector.  ``dtype`` selects the working precision of the cached arrays
    and the processing pass — ``"float32"`` halves memory traffic on
    10^5-request workloads; ``"float64"`` (the default) is bit-identical
    to :func:`evaluate_assignment`'s documented scalar semantics.

    When station capacities change mid-horizon (failure injection), call
    :meth:`refresh_capacities` before evaluating the affected slot.
    """

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        *,
        dtype: Union[str, np.dtype] = np.float64,
    ):
        if not requests:
            raise ValueError("a SlotEvaluator needs at least one request")
        self._network = network
        self._n = len(requests)
        self._dtype = np.dtype(dtype)
        if self._dtype.kind != "f":
            raise ValueError(f"dtype must be a float dtype, got {self._dtype}")
        self.service_of = service_indices(requests)
        self._d_ins = network.services.instantiation_matrix.astype(
            self._dtype, copy=False
        )
        self._c_unit = float(network.c_unit_mhz)
        self._capacities = network.capacities_mhz.astype(self._dtype, copy=False)

    @property
    def dtype(self) -> np.dtype:
        """Working precision of the cached arrays."""
        return self._dtype

    @property
    def capacities_mhz(self) -> np.ndarray:
        """The cached station-capacity vector (refresh after outages)."""
        return self._capacities

    def refresh_capacities(self) -> None:
        """Re-read live station capacities (they change under failures)."""
        self._capacities = self._network.capacities_mhz.astype(
            self._dtype, copy=False
        )

    def loads_mhz(self, assignment: Assignment, demands_mb: np.ndarray) -> np.ndarray:
        """Per-station compute load of ``assignment`` under ``demands_mb``."""
        return assignment.loads_mhz(
            demands_mb, self._c_unit, self._network.n_stations
        )

    def evaluate(
        self,
        assignment: Assignment,
        demands_mb: np.ndarray,
        unit_delays_ms: np.ndarray,
    ) -> float:
        """Realised average per-request delay of one slot (extended Eq. 3)."""
        demands_mb = np.asarray(demands_mb, dtype=self._dtype)
        unit_delays_ms = np.asarray(unit_delays_ms, dtype=self._dtype)
        n_stations = self._network.n_stations
        if assignment.n_requests != self._n:
            raise ValueError(
                f"assignment covers {assignment.n_requests} requests, "
                f"expected {self._n}"
            )
        if unit_delays_ms.shape != (n_stations,):
            raise ValueError(
                f"unit delay vector must have shape ({n_stations},), "
                f"got {unit_delays_ms.shape}"
            )
        stations = assignment.station_of
        if stations.size and int(stations.max()) >= n_stations:
            raise ValueError("assignment references a station outside the network")

        loads = assignment.loads_mhz(demands_mb, self._c_unit, n_stations).astype(
            self._dtype, copy=False
        )
        overload = np.maximum(loads / self._capacities, 1.0)
        processing = demands_mb * unit_delays_ms[stations] * overload[stations]
        # Instantiation cost: one fancy-indexed gather over the cached
        # (service, station) pairs, summed sequentially in sorted-pair
        # order — the canonical accumulation order the equivalence tests
        # pin (python set iteration order was never defined).
        pairs = assignment.cached_array()
        instantiation = sum(self._d_ins[pairs[:, 1], pairs[:, 0]].tolist())
        return float((processing.sum() + instantiation) / self._n)


def evaluate_assignment(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
) -> float:
    """Realised average per-request delay of one slot (extended Eq. 3).

    ``demands_mb`` are the slot's *true* demands and ``unit_delays_ms`` the
    realised `d_i(t)`; returns milliseconds.  One-shot spelling of
    :meth:`SlotEvaluator.evaluate` — loops that evaluate many slots over a
    fixed world should hold a :class:`SlotEvaluator` instead.
    """
    if len(requests) != assignment.n_requests:
        raise ValueError(
            f"assignment covers {assignment.n_requests} requests, "
            f"expected {len(requests)}"
        )
    return SlotEvaluator(network, requests).evaluate(
        assignment, demands_mb, unit_delays_ms
    )


def evaluate_with_transport(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
    paths: "BackhaulPaths",
) -> float:
    """Extended cost: Eq. (3) plus radio access and backhaul transfer.

    For each request, adds the wireless transmission delay to its access
    station (best covering server, paper Fig. 1's access link) and the
    backhaul transfer from the access station to the *serving* station
    when they differ (§III-C's "its data can be transferred to its
    service").  This is the transport-aware extension; the paper's
    headline results use :func:`evaluate_assignment`.
    """
    from repro.mec.paths import access_station
    from repro.mec.radio import transmission_delay_ms

    base = evaluate_assignment(
        assignment, network, requests, demands_mb, unit_delays_ms
    )
    demands_mb = np.asarray(demands_mb, dtype=np.float64)
    transport_total = 0.0
    for l, request in enumerate(requests):
        access = access_station(network, request.location)
        serving = int(assignment.station_of[l])
        station = network.stations[access]
        distance = station.position.distance_to(request.location)
        try:
            transport_total += transmission_delay_ms(
                station.radio, distance, demands_mb[l]
            )
        except ValueError:
            # Out of decodable range of even the nearest station: charge
            # the worst-case macro edge rate instead of failing the slot.
            macro = network.stations[access]
            transport_total += transmission_delay_ms(
                macro.radio, macro.radius_m, demands_mb[l]
            )
        transport_total += paths.transfer_delay_ms(access, serving, demands_mb[l])
    return base + transport_total / len(requests)
