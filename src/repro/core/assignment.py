"""Assignments and their realised cost (the paper's objective, Eq. 3).

An :class:`Assignment` says which base station serves each request in one
slot; the services cached at a station follow from the requests assigned
there (constraint 6: `y_{ki} >= x_{li}`).

:func:`evaluate_assignment` computes the realised average delay under the
slot's true demands and unit delays:

    cost = (1/|R|) * ( sum_l rho_l(t) * d_{i(l)}(t) * overload_{i(l)}
                       + sum_{(k,i) cached} d_ins[i,k] )

The overload factor extends Eq. (3) to the prediction setting: a station
whose assigned compute demand exceeds its capacity processes at a
proportionally slower rate (processor sharing), so under-predicted demand
translates into extra delay.  With feasible loads the factor is exactly 1
and the cost coincides with Eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["Assignment", "evaluate_assignment"]


@dataclass
class Assignment:
    """Per-slot caching/offloading decision.

    Attributes
    ----------
    station_of:
        ``station_of[l]`` is the base-station index serving request ``l``.
    cached:
        The `(service, station)` pairs with a live instance this slot.
    """

    station_of: np.ndarray
    cached: FrozenSet[Tuple[int, int]]

    @classmethod
    def from_stations(
        cls, station_of: Sequence[int], requests: Sequence[Request]
    ) -> "Assignment":
        """Build an assignment, deriving the cache set from constraint (6)."""
        stations = np.asarray(list(station_of), dtype=int)
        if stations.shape != (len(requests),):
            raise ValueError(
                f"need one station per request ({len(requests)}), got "
                f"shape {stations.shape}"
            )
        if np.any(stations < 0):
            raise ValueError("station indices must be non-negative")
        cached: Set[Tuple[int, int]] = set()
        for request, station in zip(requests, stations):
            cached.add((request.service_index, int(station)))
        return cls(station_of=stations, cached=frozenset(cached))

    @property
    def n_requests(self) -> int:
        return int(self.station_of.shape[0])

    def stations_used(self) -> np.ndarray:
        """Sorted unique station indices serving at least one request."""
        return np.unique(self.station_of)

    def loads_mhz(self, demands_mb: np.ndarray, c_unit_mhz: float, n_stations: int) -> np.ndarray:
        """Compute load per station: ``sum_l x_li * rho_l * C_unit`` (Eq. 5 LHS)."""
        demands_mb = np.asarray(demands_mb, dtype=float)
        if demands_mb.shape != (self.n_requests,):
            raise ValueError(
                f"demand vector must have shape ({self.n_requests},), "
                f"got {demands_mb.shape}"
            )
        loads = np.zeros(n_stations)
        np.add.at(loads, self.station_of, demands_mb * c_unit_mhz)
        return loads

    def cache_churn(self, previous: "Assignment") -> int:
        """How many instances this slot are *new* relative to ``previous``."""
        return len(self.cached - previous.cached)


def evaluate_assignment(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
) -> float:
    """Realised average per-request delay of one slot (extended Eq. 3).

    ``demands_mb`` are the slot's *true* demands and ``unit_delays_ms`` the
    realised `d_i(t)`; returns milliseconds.
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    unit_delays_ms = np.asarray(unit_delays_ms, dtype=float)
    n = len(requests)
    if assignment.n_requests != n:
        raise ValueError(
            f"assignment covers {assignment.n_requests} requests, expected {n}"
        )
    if unit_delays_ms.shape != (network.n_stations,):
        raise ValueError(
            f"unit delay vector must have shape ({network.n_stations},), "
            f"got {unit_delays_ms.shape}"
        )
    if np.any(assignment.station_of >= network.n_stations):
        raise ValueError("assignment references a station outside the network")

    loads = assignment.loads_mhz(demands_mb, network.c_unit_mhz, network.n_stations)
    capacities = network.capacities_mhz
    overload = np.maximum(loads / capacities, 1.0)

    stations = assignment.station_of
    processing = demands_mb * unit_delays_ms[stations] * overload[stations]
    instantiation = sum(
        network.services.instantiation_delay(station, service)
        for service, station in assignment.cached
    )
    return float((processing.sum() + instantiation) / n)


def evaluate_with_transport(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
    paths: "BackhaulPaths",
) -> float:
    """Extended cost: Eq. (3) plus radio access and backhaul transfer.

    For each request, adds the wireless transmission delay to its access
    station (best covering server, paper Fig. 1's access link) and the
    backhaul transfer from the access station to the *serving* station
    when they differ (§III-C's "its data can be transferred to its
    service").  This is the transport-aware extension; the paper's
    headline results use :func:`evaluate_assignment`.
    """
    from repro.mec.paths import access_station
    from repro.mec.radio import transmission_delay_ms

    base = evaluate_assignment(
        assignment, network, requests, demands_mb, unit_delays_ms
    )
    demands_mb = np.asarray(demands_mb, dtype=float)
    transport_total = 0.0
    for l, request in enumerate(requests):
        access = access_station(network, request.location)
        serving = int(assignment.station_of[l])
        station = network.stations[access]
        distance = station.position.distance_to(request.location)
        try:
            transport_total += transmission_delay_ms(
                station.radio, distance, demands_mb[l]
            )
        except ValueError:
            # Out of decodable range of even the nearest station: charge
            # the worst-case macro edge rate instead of failing the slot.
            macro = network.stations[access]
            transport_total += transmission_delay_ms(
                macro.radio, macro.radius_m, demands_mb[l]
            )
        transport_total += paths.transfer_delay_ms(access, serving, demands_mb[l])
    return base + transport_total / len(requests)
