"""Churn-aware costing and cache hysteresis (extension).

Eq. (3) charges `y_ki * d_ins[i,k]` every slot, i.e. it prices *holding*
an instance.  A natural alternative — closer to how VM/container startup
actually costs — charges instantiation only when an instance is **newly**
created relative to the previous slot (`Assignment.cache_churn`).  Under
that costing, a controller that thrashes its cache pays for it, so this
module also provides :class:`HysteresisController`: a wrapper that keeps a
request at its previous station unless the estimated saving of moving
exceeds the (re-)instantiation cost — a classic switching-cost guard.

Evaluated in ``benchmarks/bench_ablation_churn.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.assignment import Assignment, evaluate_assignment
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.validation import require_non_negative

__all__ = ["evaluate_with_churn", "HysteresisController"]


def evaluate_with_churn(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
    previous: Optional[Assignment],
) -> float:
    """Average delay charging `d_ins` only for newly-instantiated services.

    With ``previous=None`` (the first slot) every cached instance is new
    and the result equals :func:`evaluate_assignment`.
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    unit_delays_ms = np.asarray(unit_delays_ms, dtype=float)
    n = len(requests)
    base = evaluate_assignment(
        assignment, network, requests, demands_mb, unit_delays_ms
    )
    if previous is None:
        return base
    kept = assignment.cached & previous.cached
    amortised = sum(
        network.services.instantiation_delay(station, service)
        for service, station in kept
    )
    return base - amortised / n


class HysteresisController(Controller):
    """Switching-cost guard around any given-demands controller.

    Per slot the inner controller proposes an assignment; each request
    then *stays* at its previous station unless the proposal's estimated
    per-request saving

        rho_l * (theta[old] - theta[new])

    exceeds ``switch_threshold_ms`` plus the instantiation cost of any
    newly required instance.  Capacity feasibility of the merged plan is
    restored by accepting the proposal for requests whose stay would
    overload their old station.
    """

    def __init__(
        self,
        inner: Controller,
        switch_threshold_ms: float = 1.0,
    ):
        super().__init__(inner.network, inner.requests)
        require_non_negative("switch_threshold_ms", switch_threshold_ms)
        self.inner = inner
        self.name = f"{inner.name}+hyst"
        self._threshold = float(switch_threshold_ms)
        self._previous: Optional[Assignment] = None

    def _theta(self) -> np.ndarray:
        arms = getattr(self.inner, "arms", None)
        if arms is None:
            raise TypeError(
                "HysteresisController needs an inner controller with arm "
                "statistics (OL_GD, Greedy_GD, Pri_GD, CMAB)"
            )
        return arms.means

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        proposal = self.inner.decide(slot, demands)
        if self._previous is None:
            self._previous = proposal
            return proposal
        demands = np.asarray(demands, dtype=float)
        theta = self._theta()
        previous_cached = self._previous.cached
        capacities = self.network.capacities_mhz
        needs = demands * self.network.c_unit_mhz

        # Start from the *previous* plan (maximum stability) and apply only
        # the proposal's moves that pay for themselves and fit.
        stations = self._previous.station_of.copy()
        loads = np.zeros(self.network.n_stations)
        np.add.at(loads, stations, needs)

        for l, request in enumerate(self.requests):
            old = int(stations[l])
            new = int(proposal.station_of[l])
            if old == new:
                continue
            saving = demands[l] * (theta[old] - theta[new])
            switch_cost = self._threshold
            if (request.service_index, new) not in previous_cached:
                switch_cost += self.network.services.instantiation_delay(
                    new, request.service_index
                )
            if saving > switch_cost and loads[new] + needs[l] <= capacities[new] + 1e-9:
                loads[old] -= needs[l]
                loads[new] += needs[l]
                stations[l] = new

        # Demand changes can overload a kept station: evict its movers to
        # their proposal stations (or, failing that, the freest station).
        for _ in range(self.network.n_stations):
            overloaded = np.nonzero(loads > capacities + 1e-9)[0]
            if overloaded.size == 0:
                break
            moved_any = False
            for station in overloaded:
                assigned = np.nonzero(stations == station)[0]
                for l in assigned:
                    if loads[station] <= capacities[station] + 1e-9:
                        break
                    target = int(proposal.station_of[l])
                    if target == station or loads[target] + needs[l] > capacities[target] + 1e-9:
                        free = capacities - loads
                        target = int(np.argmax(free))
                        if free[target] < needs[l] - 1e-9:
                            continue
                    loads[station] -= needs[l]
                    loads[target] += needs[l]
                    stations[l] = target
                    moved_any = True
            if not moved_any:
                break
        merged = Assignment.from_stations(
            stations, self.requests, service_of=self.service_of
        )
        self._previous = merged
        return merged

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        self.inner.observe(slot, demands, unit_delays, assignment)
