"""Queueing-theoretic cost model: M/M/1-style load sensitivity (extension).

The paper's Eq. (2) prices processing as `rho * d_i(t)` regardless of how
busy the station is; real cloudlets queue.  :func:`evaluate_mm1` applies
the M/M/1 sojourn-time factor `1 / (1 - utilisation)` (clipped at
``max_factor``) to each station's processing delay, so delays blow up
smoothly as a station approaches saturation — the cost model under which
accurate demand prediction matters most (see EXPERIMENTS.md's Fig. 6
discussion).

This evaluator is intentionally *not* used for the paper's headline
figures (their equations don't queue); it is provided for studies of the
cost-model sensitivity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.assignment import Assignment
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.validation import require_positive

__all__ = ["evaluate_mm1", "mm1_factor"]


def mm1_factor(utilisation: np.ndarray, max_factor: float = 20.0) -> np.ndarray:
    """`1 / (1 - u)` clipped to ``[1, max_factor]`` (elementwise).

    Utilisations at or above 1 saturate at ``max_factor`` (the queue is
    unstable; the finite clip keeps slot costs finite, standard practice
    in slotted simulators).
    """
    require_positive("max_factor", max_factor)
    if max_factor < 1.0:
        raise ValueError(f"max_factor must be >= 1, got {max_factor}")
    utilisation = np.asarray(utilisation, dtype=float)
    if np.any(utilisation < 0):
        raise ValueError("utilisation must be non-negative")
    with np.errstate(divide="ignore"):
        raw = np.where(utilisation < 1.0, 1.0 / (1.0 - utilisation), np.inf)
    return np.clip(raw, 1.0, max_factor)


def evaluate_mm1(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
    max_factor: float = 20.0,
) -> float:
    """Average per-request delay under M/M/1 load sensitivity.

    Identical to :func:`repro.core.assignment.evaluate_assignment` except
    that the processor-sharing overload factor is replaced by the M/M/1
    sojourn factor at every load level.
    """
    demands_mb = np.asarray(demands_mb, dtype=float)
    unit_delays_ms = np.asarray(unit_delays_ms, dtype=float)
    n = len(requests)
    if assignment.n_requests != n:
        raise ValueError(
            f"assignment covers {assignment.n_requests} requests, expected {n}"
        )
    if unit_delays_ms.shape != (network.n_stations,):
        raise ValueError(
            f"unit delay vector must have shape ({network.n_stations},), "
            f"got {unit_delays_ms.shape}"
        )
    loads = assignment.loads_mhz(demands_mb, network.c_unit_mhz, network.n_stations)
    utilisation = loads / network.capacities_mhz
    factor = mm1_factor(utilisation, max_factor=max_factor)
    stations = assignment.station_of
    processing = demands_mb * unit_delays_ms[stations] * factor[stations]
    instantiation = sum(
        network.services.instantiation_delay(station, service)
        for service, station in assignment.cached
    )
    return float((processing.sum() + instantiation) / n)
