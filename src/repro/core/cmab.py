"""LP-free combinatorial-bandit controllers (ablation baselines).

The paper's key design choice is steering arm selection with the per-slot
LP relaxation instead of classic index policies (§IV-A asks "how to find
'good' arms ... considering that it is NP-hard to cache services given
full knowledge").  These controllers drop the LP and pick a station per
request directly with a generic bandit policy (UCB1 / Thompson from
:mod:`repro.bandits`), packing capacity greedily in request order — the
natural CMAB-style comparator (cf. the paper's refs [4], [37]).

Compared against `OL_GD` in ``benchmarks/bench_ablation_cmab.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bandits.arms import ArmStats
from repro.bandits.policies import BanditPolicy, ThompsonSampling, Ucb1
from repro.core.assignment import Assignment
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request

__all__ = ["CmabController", "cmab_ucb", "cmab_thompson"]


class CmabController(Controller):
    """Per-request bandit selection with greedy capacity packing.

    Each request consults the shared arm statistics through ``policy``,
    restricted to stations whose remaining capacity fits it; ties in
    feasibility fall back to the least-loaded station (overload is then
    priced by the evaluator, as for every controller).
    """

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
        *,
        policy: BanditPolicy,
        name: Optional[str] = None,
    ):
        super().__init__(network, requests)
        self._rng = rng
        self._policy = policy
        if name is not None:
            self.name = name
        d_min, _ = network.delays.bounds
        self.arms = ArmStats(network.n_stations, prior_mean=d_min)

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is None:
            raise ValueError("CMAB controllers assume given demands (ablation)")
        demands = np.asarray(demands, dtype=float)
        capacities = self.network.capacities_mhz.copy()
        stations = np.empty(self.n_requests, dtype=int)
        for l in range(self.n_requests):
            need = demands[l] * self.network.c_unit_mhz
            feasible = np.nonzero(capacities >= need)[0]
            if feasible.size == 0:
                stations[l] = int(np.argmax(capacities))
            else:
                stations[l] = self._policy.select(
                    self.arms, slot + 1, self._rng, allowed=feasible.tolist()
                )
            capacities[stations[l]] -= need
        return Assignment.from_stations(
            stations, self.requests, service_of=self.service_of
        )

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        played, observed = self.observed_delays(unit_delays, assignment)
        self.arms.observe_many(played.tolist(), observed.tolist())

    def state_dict(self) -> Dict[str, Any]:
        """Arm statistics plus the policy RNG; policies themselves are
        stateless (fixed constructor parameters)."""
        from repro.state.snapshot import rng_state

        return {"arms": self.arms.state_dict(), "rng": rng_state(self._rng)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from repro.state.snapshot import set_rng_state

        self.arms.load_state_dict(state["arms"])
        set_rng_state(self._rng, state["rng"])


def cmab_ucb(
    network: MECNetwork, requests: Sequence[Request], rng: np.random.Generator
) -> CmabController:
    """CMAB with a UCB1 (LCB-for-costs) index, scaled to the delay range."""
    _, d_max = network.delays.bounds
    policy = Ucb1(scale=d_max / 4.0)
    return CmabController(network, requests, rng, policy=policy, name="CMAB_UCB")


def cmab_thompson(
    network: MECNetwork, requests: Sequence[Request], rng: np.random.Generator
) -> CmabController:
    """CMAB with Gaussian Thompson sampling."""
    _, d_max = network.delays.bounds
    policy = ThompsonSampling(exploration_std=d_max / 10.0)
    return CmabController(network, requests, rng, policy=policy, name="CMAB_TS")
