"""`OL_Reg` baseline: AR demand prediction (Eq. 27) feeding the OL_GD core.

"An online algorithm with a single autoregression prediction": the
per-slot demand is forecast by :class:`repro.prediction.ArPredictor` and
the LP-guided online learner then caches/assigns exactly as Algorithm 1.
Before any demand is observed, the basic demands `rho^bsc` (given a
priori, §III-B) serve as the first prediction.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.assignment import Assignment
from repro.core.controller import Controller
from repro.core.ol_gd import ExplorationConfig, OlGdController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.prediction.arma import ArPredictor

__all__ = ["OlRegController"]


class OlRegController(Controller):
    """`OL_Reg`: ARMA-predicted demands + the Algorithm 1 machinery."""

    name = "OL_Reg"

    def __init__(
        self,
        network: MECNetwork,
        requests: Sequence[Request],
        rng: np.random.Generator,
        *,
        order: int = 5,
        gamma: float = 0.1,
        exploration: Optional[ExplorationConfig] = None,
        inner_rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(network, requests)
        self.predictor = ArPredictor(len(requests), order=order)
        self.inner = OlGdController(
            network,
            requests,
            inner_rng if inner_rng is not None else rng,
            gamma=gamma,
            exploration=exploration,
        )
        self._basic = np.array([r.basic_demand_mb for r in requests])

    @property
    def last_prediction(self) -> Optional[np.ndarray]:
        """The demand vector used for the most recent decision."""
        return getattr(self, "_last_prediction", None)

    def decide(self, slot: int, demands: Optional[np.ndarray]) -> Assignment:
        if demands is not None:
            raise ValueError(
                "OL_Reg is the unknown-demands algorithm; the engine must "
                "pass demands=None and let the predictor forecast"
            )
        if self.predictor.n_observed == 0:
            predicted = self._basic.copy()
        else:
            # The basic demand is a known floor (Eq. 1).
            predicted = np.maximum(self.predictor.predict_next(), self._basic)
        self._last_prediction = predicted
        return self.inner.decide(slot, predicted)

    def observe(
        self,
        slot: int,
        demands: np.ndarray,
        unit_delays: np.ndarray,
        assignment: Assignment,
    ) -> None:
        self.inner.observe(slot, demands, unit_delays, assignment)
        self.predictor.observe(np.asarray(demands, dtype=float))

    def state_dict(self) -> Dict[str, Any]:
        """The AR predictor's history plus the inner OL_GD learner."""
        return {
            "predictor": self.predictor.state_dict(),
            "inner": self.inner.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.predictor.load_state_dict(state["predictor"])
        self.inner.load_state_dict(state["inner"])
