"""Name-indexed controller construction: ``make_controller``.

Every controller the experiments compare is registered here under the
name the paper's figures use (``OL_GD``, ``OL_GAN``, ``Greedy_GD``, ...).
The registry gives the repo one spelling of each construction recipe —
the figure scripts, the quickstart and the sweep orchestration all route
through :func:`make_controller` instead of importing controller classes —
and it makes names *identifiers*: a controller built by name reports that
exact name, which is what the checkpoint subsystem (:mod:`repro.state`)
stores in simulation snapshots and sweep manifests to refuse resuming a
mismatched run.

Registering is open: :func:`register_controller` accepts project-external
factories (e.g. an ablation variant in a benchmark script) as long as the
built controller answers to the registered name.

The registry itself is one instance of the generic
:class:`repro.utils.registry.Registry` pattern; the parallel registries
for topologies (:mod:`repro.mec.registry`), demand models
(:mod:`repro.workload.registry`) and predictors
(:mod:`repro.prediction.registry`) share the same enforcement, which is
what lets a declarative campaign spec (:mod:`repro.campaigns`) name every
axis of a scenario.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

import numpy as np

from repro.core.cmab import cmab_thompson, cmab_ucb
from repro.core.controller import Controller
from repro.core.greedy import GreedyController
from repro.core.ol_gan import OlGanController
from repro.core.ol_gd import OlGdController
from repro.core.ol_reg import OlRegController
from repro.core.priority import PriorityController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.registry import Registry

__all__ = [
    "CONTROLLERS",
    "ControllerFactory",
    "register_controller",
    "controller_names",
    "make_controller",
]

#: A factory builds one controller for one world; extra options are the
#: controller's own keyword-only tuning parameters, forwarded verbatim.
ControllerFactory = Callable[..., Controller]

#: The controller registry instance (names are checkpoint identities).
CONTROLLERS: Registry[Controller] = Registry(
    "controller", identity=lambda controller: controller.name
)


def register_controller(name: str, factory: ControllerFactory) -> None:
    """Register ``factory`` under ``name`` (must be new and non-empty).

    The factory is called as ``factory(network, requests, rng, **options)``
    and must return a controller whose ``.name`` equals the registered
    name — :func:`make_controller` enforces this, because the name is the
    identity checkpoints are validated against.
    """
    CONTROLLERS.register(name, factory)


def controller_names() -> Tuple[str, ...]:
    """All registered controller names, sorted."""
    return CONTROLLERS.names()


def make_controller(
    name: str,
    network: MECNetwork,
    requests: Sequence[Request],
    rng: np.random.Generator,
    **options: Any,
) -> Controller:
    """Build the controller registered under ``name``.

    ``rng`` is the controller's private stream (callers typically pass a
    named stream from a :class:`~repro.utils.seeding.RngRegistry`);
    ``options`` are forwarded to the factory as keyword arguments — the
    keyword-only tuning parameters of the underlying controller class
    (e.g. ``gamma=0.2`` for ``OL_GD``, ``window=8`` for ``OL_GAN``).
    """
    return CONTROLLERS.make(name, network, requests, rng, **options)


register_controller("OL_GD", OlGdController)
register_controller("OL_GAN", OlGanController)
register_controller("OL_Reg", OlRegController)
register_controller("Greedy_GD", GreedyController)
register_controller("Pri_GD", PriorityController)
register_controller("CMAB_UCB", cmab_ucb)
register_controller("CMAB_TS", cmab_thompson)
