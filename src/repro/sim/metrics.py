"""Per-slot records and aggregate results of a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bandits.regret import RegretTracker

__all__ = ["SlotRecord", "SimulationResult"]


@dataclass(frozen=True)
class SlotRecord:
    """Everything measured in one slot."""

    slot: int
    average_delay_ms: float
    decision_seconds: float
    observe_seconds: float
    #: Instances newly created *relative to the previous slot*.  Slot 0 has
    #: no previous slot, so its churn is 0 and the cold-start placement is
    #: reported separately in ``initial_instantiations``.
    cache_churn: int
    n_cached_instances: int
    max_load_fraction: float
    optimal_delay_ms: Optional[float] = None
    prediction_mae_mb: Optional[float] = None
    #: Cold-start instantiations (nonzero only at slot 0): the initial
    #: cache is not churn — counting it as such inflated ``total_churn``.
    initial_instantiations: int = 0


@dataclass
class SimulationResult:
    """The full run: per-slot records plus aggregate accessors."""

    controller_name: str
    records: List[SlotRecord] = field(default_factory=list)

    def append(self, record: SlotRecord) -> None:
        if self.records and record.slot != self.records[-1].slot + 1:
            raise ValueError(
                f"slot {record.slot} out of order after {self.records[-1].slot}"
            )
        if not self.records and record.slot != 0:
            raise ValueError(f"first record must be slot 0, got {record.slot}")
        self.records.append(record)

    @property
    def horizon(self) -> int:
        return len(self.records)

    @property
    def delays_ms(self) -> np.ndarray:
        """Per-slot average delay (the Fig. 3a/4a/5a/6a/7 series)."""
        return np.array([r.average_delay_ms for r in self.records])

    @property
    def decision_seconds(self) -> np.ndarray:
        """Per-slot total controller time: decide + observe.

        This is the running-time series of the paper's (b) sub-figures —
        the full per-slot compute a controller costs, including online
        model refinement done in ``observe`` (the GAN's per-slot training
        in Algorithm 2 lines 14-15 happens there).
        """
        return np.array(
            [r.decision_seconds + r.observe_seconds for r in self.records]
        )

    @property
    def decide_only_seconds(self) -> np.ndarray:
        """Per-slot decide() time alone (excluding observe/refinement)."""
        return np.array([r.decision_seconds for r in self.records])

    @property
    def cache_churn(self) -> np.ndarray:
        """Newly-instantiated service instances per slot.

        Slot 0 reports 0: standing up the initial cache is not churn (see
        :attr:`initial_instantiations`).
        """
        return np.array([r.cache_churn for r in self.records], dtype=int)

    @property
    def initial_instantiations(self) -> int:
        """Instances created at slot 0 to stand up the initial cache."""
        return int(sum(r.initial_instantiations for r in self.records))

    @property
    def max_load_fractions(self) -> np.ndarray:
        """Per-slot worst station load as a fraction of its capacity."""
        return np.array([r.max_load_fraction for r in self.records])

    @property
    def prediction_maes(self) -> np.ndarray:
        """Per-slot prediction MAE (NaN for given-demand runs)."""
        return np.array(
            [
                np.nan if r.prediction_mae_mb is None else r.prediction_mae_mb
                for r in self.records
            ]
        )

    def _require_records(self) -> None:
        """One consistent error for every aggregate over an empty result.

        Previously ``summary()`` silently guarded ``peak_load_fraction``
        while ``mean_delay_ms()`` raised first with a skip-specific
        message — aggregates now fail up front, identically.
        """
        if not self.records:
            raise ValueError(
                f"empty SimulationResult for {self.controller_name!r}: "
                "no slots recorded"
            )

    def mean_delay_ms(self, skip_warmup: int = 0) -> float:
        """Mean per-slot delay, optionally skipping the first slots.

        The paper's headline "%-better" comparisons are steady-state; the
        warm-up skip excludes the exploration transient when asked.
        """
        self._require_records()
        if skip_warmup < 0:
            raise ValueError("skip_warmup must be >= 0")
        delays = self.delays_ms[skip_warmup:]
        if delays.size == 0:
            raise ValueError(
                f"no slots left after skipping {skip_warmup} of {self.horizon}"
            )
        return float(delays.mean())

    def mean_decision_seconds(self) -> float:
        """Mean controller decision time per slot."""
        self._require_records()
        return float(self.decision_seconds.mean())

    def regret_tracker(self) -> RegretTracker:
        """Build the Eq. (10) tracker from slots that carry an optimum."""
        tracker = RegretTracker()
        for record in self.records:
            if record.optimal_delay_ms is not None:
                tracker.record(record.average_delay_ms, record.optimal_delay_ms)
        return tracker

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable form of the record series (see :mod:`repro.state`).

        Each :class:`SlotRecord` field becomes one column array; the two
        optional floats encode ``None`` as NaN (they are physically
        positive when present, so NaN is unambiguous).
        """
        records = self.records
        return {
            "controller_name": self.controller_name,
            "slots": np.array([r.slot for r in records], dtype=int),
            "average_delay_ms": np.array(
                [r.average_delay_ms for r in records], dtype=float
            ),
            "decision_seconds": np.array(
                [r.decision_seconds for r in records], dtype=float
            ),
            "observe_seconds": np.array(
                [r.observe_seconds for r in records], dtype=float
            ),
            "cache_churn": np.array([r.cache_churn for r in records], dtype=int),
            "n_cached_instances": np.array(
                [r.n_cached_instances for r in records], dtype=int
            ),
            "max_load_fraction": np.array(
                [r.max_load_fraction for r in records], dtype=float
            ),
            "optimal_delay_ms": np.array(
                [
                    np.nan if r.optimal_delay_ms is None else r.optimal_delay_ms
                    for r in records
                ],
                dtype=float,
            ),
            "prediction_mae_mb": np.array(
                [
                    np.nan if r.prediction_mae_mb is None else r.prediction_mae_mb
                    for r in records
                ],
                dtype=float,
            ),
            "initial_instantiations": np.array(
                [r.initial_instantiations for r in records], dtype=int
            ),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`state_dict` output."""

        def _optional(value: float) -> Optional[float]:
            return None if np.isnan(value) else float(value)

        slots = np.asarray(state["slots"], dtype=int)
        result = cls(controller_name=str(state["controller_name"]))
        for i, slot in enumerate(slots):
            result.append(
                SlotRecord(
                    slot=int(slot),
                    average_delay_ms=float(state["average_delay_ms"][i]),
                    decision_seconds=float(state["decision_seconds"][i]),
                    observe_seconds=float(state["observe_seconds"][i]),
                    cache_churn=int(state["cache_churn"][i]),
                    n_cached_instances=int(state["n_cached_instances"][i]),
                    max_load_fraction=float(state["max_load_fraction"][i]),
                    optimal_delay_ms=_optional(state["optimal_delay_ms"][i]),
                    prediction_mae_mb=_optional(state["prediction_mae_mb"][i]),
                    initial_instantiations=int(state["initial_instantiations"][i]),
                )
            )
        return result

    def summary(self) -> dict:
        """Aggregate dictionary used by the experiment tables.

        Raises ``ValueError`` for an empty result.  ``total_churn`` counts
        slot-to-slot instantiations only; the cold-start placement is the
        separate ``initial_instantiations`` entry.
        """
        self._require_records()
        return {
            "controller": self.controller_name,
            "horizon": self.horizon,
            "mean_delay_ms": self.mean_delay_ms(),
            "mean_decision_s": self.mean_decision_seconds(),
            "total_churn": int(self.cache_churn.sum()),
            "initial_instantiations": self.initial_instantiations,
            "peak_load_fraction": float(self.max_load_fractions.max()),
        }
