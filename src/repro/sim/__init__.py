"""Time-slot simulation engine and metrics.

Drives any :class:`repro.core.Controller` over a horizon against an
:class:`repro.mec.MECNetwork` and a :class:`repro.workload.DemandModel`,
recording the per-slot series the paper's figures plot (average delay,
controller running time) plus regret and cache-churn diagnostics.
"""

from repro.sim.engine import run_simulation
from repro.sim.failures import FailureSchedule, run_with_failures
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.sim.multirun import (
    MetricSummary,
    PairedComparison,
    RepetitionStudy,
    compare_controllers,
    run_repetitions,
)
from repro.sim.parallel import (
    ParallelRunner,
    RepetitionFailure,
    resolve_n_jobs,
)
from repro.state import CheckpointConfig, CheckpointError, SweepManifest

__all__ = [
    "CheckpointConfig",
    "CheckpointError",
    "SweepManifest",
    "run_simulation",
    "FailureSchedule",
    "run_with_failures",
    "SimulationResult",
    "SlotRecord",
    "MetricSummary",
    "PairedComparison",
    "RepetitionStudy",
    "RepetitionFailure",
    "ParallelRunner",
    "compare_controllers",
    "run_repetitions",
    "resolve_n_jobs",
]
