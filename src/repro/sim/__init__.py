"""Time-slot simulation engine and metrics.

Drives any :class:`repro.core.Controller` over a horizon against an
:class:`repro.mec.MECNetwork` and a :class:`repro.workload.DemandModel`,
recording the per-slot series the paper's figures plot (average delay,
controller running time) plus regret and cache-churn diagnostics.
"""

from repro.sim.config import UNSET, RunConfig, resolve_run_config
from repro.sim.engine import run_simulation
from repro.sim.failures import FailureSchedule, run_with_failures
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.sim.multirun import (
    MetricSummary,
    PairedComparison,
    RepetitionStudy,
    aggregate_work_results,
    compare_controllers,
    run_repetitions,
)
from repro.sim.parallel import (
    ParallelRunner,
    RepetitionFailure,
    WorkItem,
    WorkResult,
    build_world,
    load_work_result,
    make_worker_pool,
    persist_work_result,
    resolve_n_jobs,
    run_item_on_world,
)
from repro.state import CheckpointConfig, CheckpointError, SweepManifest

__all__ = [
    "CheckpointConfig",
    "CheckpointError",
    "RunConfig",
    "SweepManifest",
    "UNSET",
    "resolve_run_config",
    "run_simulation",
    "FailureSchedule",
    "run_with_failures",
    "SimulationResult",
    "SlotRecord",
    "MetricSummary",
    "PairedComparison",
    "RepetitionStudy",
    "RepetitionFailure",
    "ParallelRunner",
    "WorkItem",
    "WorkResult",
    "aggregate_work_results",
    "build_world",
    "compare_controllers",
    "load_work_result",
    "make_worker_pool",
    "persist_work_result",
    "run_item_on_world",
    "run_repetitions",
    "resolve_n_jobs",
]
