"""Multi-repetition orchestration: means, spreads, confidence intervals.

The paper averages every figure over 80 topologies.  This module makes
that pattern a first-class, tested utility: run a scenario across
independently-seeded repetitions and aggregate any scalar metric with a
normal-approximation confidence interval, plus a paired comparison helper
(:func:`compare_controllers`) that reports whether one controller beats
another consistently across seeds (sign test + paired mean difference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.sim.engine import run_simulation
from repro.sim.metrics import SimulationResult
from repro.utils.seeding import RngRegistry
from repro.utils.validation import require_positive, require_probability
from repro.workload.demand import DemandModel

__all__ = [
    "MetricSummary",
    "RepetitionStudy",
    "run_repetitions",
    "compare_controllers",
    "PairedComparison",
]

# A scenario builder returns the world for one repetition.
ScenarioBuilder = Callable[
    [RngRegistry], Tuple[MECNetwork, DemandModel, List[Controller]]
]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread / CI of one scalar metric across repetitions."""

    name: str
    values: Tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        return len(self.values)


def _summarise(name: str, values: Sequence[float], confidence: float) -> MetricSummary:
    array = np.asarray(list(values), dtype=float)
    mean = float(array.mean())
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    if array.size > 1 and std > 0:
        margin = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1)
        half_width = margin * std / math.sqrt(array.size)
    else:
        half_width = 0.0
    return MetricSummary(
        name=name,
        values=tuple(float(v) for v in array),
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


@dataclass
class RepetitionStudy:
    """Results of a repeated scenario: per-controller metric summaries."""

    horizon: int
    repetitions: int
    # controller name -> metric name -> summary
    summaries: Dict[str, Dict[str, MetricSummary]]
    # controller name -> raw per-repetition results
    raw: Dict[str, List[SimulationResult]]

    def summary(self, controller: str, metric: str) -> MetricSummary:
        if controller not in self.summaries:
            raise KeyError(
                f"no controller {controller!r}; have {sorted(self.summaries)}"
            )
        metrics = self.summaries[controller]
        if metric not in metrics:
            raise KeyError(f"no metric {metric!r}; have {sorted(metrics)}")
        return metrics[metric]

    def table(self, metric: str = "mean_delay_ms") -> str:
        """Aligned text table of one metric across controllers."""
        lines = [
            f"{'controller':<16} {'mean':>10} {'std':>10} {'95% CI':>23}  (n={self.repetitions})"
        ]
        for name in sorted(self.summaries):
            s = self.summary(name, metric)
            lines.append(
                f"{name:<16} {s.mean:>10.3f} {s.std:>10.3f} "
                f"[{s.ci_low:>9.3f}, {s.ci_high:>9.3f}]"
            )
        return "\n".join(lines)


def run_repetitions(
    build: ScenarioBuilder,
    seed: int,
    repetitions: int,
    horizon: int,
    demands_known: bool = True,
    skip_warmup: Optional[int] = None,
    confidence: float = 0.95,
) -> RepetitionStudy:
    """Run ``build`` across ``repetitions`` seeds and aggregate metrics.

    ``build`` receives a per-repetition :class:`RngRegistry` and returns
    ``(network, demand_model, controllers)``; every controller is run on
    the same world of its repetition.  Aggregated metrics per controller:
    ``mean_delay_ms``, ``mean_decision_s``, ``total_churn``.
    """
    require_positive("repetitions", repetitions)
    require_positive("horizon", horizon)
    require_probability("confidence", confidence)
    if skip_warmup is None:
        skip_warmup = max(horizon // 4, 1)
    if skip_warmup >= horizon:
        raise ValueError(
            f"skip_warmup ({skip_warmup}) must be below horizon ({horizon})"
        )

    metric_values: Dict[str, Dict[str, List[float]]] = {}
    raw: Dict[str, List[SimulationResult]] = {}
    for repetition in range(repetitions):
        rngs = RngRegistry(seed=seed).child(f"rep{repetition}")
        network, demand_model, controllers = build(rngs)
        for controller in controllers:
            result = run_simulation(
                network,
                demand_model,
                controller,
                horizon=horizon,
                demands_known=demands_known,
            )
            store = metric_values.setdefault(controller.name, {})
            store.setdefault("mean_delay_ms", []).append(
                result.mean_delay_ms(skip_warmup=skip_warmup)
            )
            store.setdefault("mean_decision_s", []).append(
                result.mean_decision_seconds()
            )
            store.setdefault("total_churn", []).append(
                float(result.cache_churn.sum())
            )
            raw.setdefault(controller.name, []).append(result)

    summaries = {
        name: {
            metric: _summarise(metric, values, confidence)
            for metric, values in metrics.items()
        }
        for name, metrics in metric_values.items()
    }
    return RepetitionStudy(
        horizon=horizon, repetitions=repetitions, summaries=summaries, raw=raw
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired across-seed comparison of two controllers on one metric."""

    metric: str
    name_a: str
    name_b: str
    mean_difference: float  # mean(b - a): positive => a is better (lower)
    wins_a: int
    wins_b: int
    ties: int
    sign_test_p: float

    @property
    def a_wins_majority(self) -> bool:
        return self.wins_a > self.wins_b


def compare_controllers(
    study: RepetitionStudy,
    name_a: str,
    name_b: str,
    metric: str = "mean_delay_ms",
) -> PairedComparison:
    """Paired comparison: per-seed differences, win counts, sign test.

    The two controllers must have been run in the same study (same worlds
    per repetition), which is what makes the pairing valid.
    """
    a = study.summary(name_a, metric).values
    b = study.summary(name_b, metric).values
    if len(a) != len(b):
        raise ValueError(
            f"controllers have different repetition counts: {len(a)} vs {len(b)}"
        )
    differences = np.asarray(b) - np.asarray(a)
    wins_a = int(np.sum(differences > 0))
    wins_b = int(np.sum(differences < 0))
    ties = int(np.sum(differences == 0))
    decisive = wins_a + wins_b
    if decisive > 0:
        sign_p = float(
            scipy_stats.binomtest(wins_a, decisive, 0.5).pvalue
        )
    else:
        sign_p = 1.0
    return PairedComparison(
        metric=metric,
        name_a=name_a,
        name_b=name_b,
        mean_difference=float(differences.mean()),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        sign_test_p=sign_p,
    )
