"""Multi-repetition orchestration: means, spreads, confidence intervals.

The paper averages every figure over 80 topologies.  This module makes
that pattern a first-class, tested utility: run a scenario across
independently-seeded repetitions and aggregate any scalar metric with a
normal-approximation confidence interval, plus a paired comparison helper
(:func:`compare_controllers`) that reports whether one controller beats
another consistently across seeds (sign test + paired mean difference).

Execution is delegated to :class:`repro.sim.parallel.ParallelRunner`:
``n_jobs=1`` (default) runs in-process, ``n_jobs>1`` fans the
``(repetition, controller)`` grid over a process pool with bit-identical
results (see :mod:`repro.sim.parallel` for the determinism argument).
Crashed repetitions are recorded in :attr:`RepetitionStudy.failures` and
excluded from the summaries instead of killing the study.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.obs import MetricsRegistry
from repro.sim.config import UNSET, RunConfig, resolve_run_config
from repro.sim.failures import FailureSchedule
from repro.sim.metrics import SimulationResult
from repro.sim.parallel import (
    ParallelRunner,
    RepetitionFailure,
    ScenarioBuilder,
    WorkResult,
)
from repro.utils.validation import require_open_probability, require_positive

__all__ = [
    "MetricSummary",
    "RepetitionStudy",
    "RepetitionFailure",
    "aggregate_work_results",
    "default_skip_warmup",
    "run_repetitions",
    "compare_controllers",
    "PairedComparison",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread / CI of one scalar metric across repetitions.

    ``repetitions[i]`` is the repetition index that produced
    ``values[i]`` — the key :func:`compare_controllers` pairs on.  When a
    repetition crashed for this controller, its index is simply absent.
    """

    name: str
    values: Tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    repetitions: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.repetitions:
            # Summaries built from bare value lists (no repetition
            # provenance) default to positional indices.
            object.__setattr__(
                self, "repetitions", tuple(range(len(self.values)))
            )
        if len(self.repetitions) != len(self.values):
            raise ValueError(
                f"{len(self.repetitions)} repetition keys for "
                f"{len(self.values)} values"
            )

    @property
    def n(self) -> int:
        return len(self.values)

    def by_repetition(self) -> Dict[int, float]:
        """``repetition -> value`` (what paired comparisons join on)."""
        return dict(zip(self.repetitions, self.values))


def _summarise(
    name: str,
    values: Sequence[float],
    confidence: float,
    repetitions: Optional[Sequence[int]] = None,
) -> MetricSummary:
    # The closed endpoints are rejected: t.ppf(1.0) is +inf (an infinite
    # CI) and confidence=0 is a zero-width interval nobody means to ask for.
    require_open_probability("confidence", confidence)
    array = np.asarray(list(values), dtype=float)
    mean = float(array.mean())
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    if array.size > 1 and std > 0:
        margin = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1)
        half_width = margin * std / math.sqrt(array.size)
    else:
        half_width = 0.0
    return MetricSummary(
        name=name,
        values=tuple(float(v) for v in array),
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        repetitions=(
            tuple(int(r) for r in repetitions) if repetitions is not None else ()
        ),
    )


@dataclass
class RepetitionStudy:
    """Results of a repeated scenario: per-controller metric summaries.

    Besides the summaries, the study carries the execution accounting of
    the run that produced it: worker count, wall-clock versus summed
    CPU-seconds of the work items, and any failed repetitions (crashes are
    recorded here and excluded from the summaries, never fatal).
    """

    horizon: int
    repetitions: int
    # controller name -> metric name -> summary
    summaries: Dict[str, Dict[str, MetricSummary]]
    # controller name -> raw per-repetition results
    raw: Dict[str, List[SimulationResult]]
    # ---- execution accounting -------------------------------------- #
    n_jobs: int = 1
    wall_clock_seconds: float = 0.0
    cpu_seconds: float = 0.0          # summed across work items
    completed_runs: int = 0           # successful (repetition, controller) items
    failures: List[RepetitionFailure] = field(default_factory=list)
    # ---- telemetry (populated with collect_metrics=True) ------------- #
    #: Aggregate registry merged across every work item (None when off).
    metrics: Optional[MetricsRegistry] = None
    #: Per-worker registries keyed by the executing pid; with ``n_jobs=1``
    #: there is exactly one entry (the parent process).
    worker_metrics: Dict[int, MetricsRegistry] = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        """Work items that crashed and were excluded from the summaries."""
        return len(self.failures)

    @property
    def runs_per_second(self) -> float:
        """Completed (repetition, controller) runs per wall-clock second."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.completed_runs / self.wall_clock_seconds

    @property
    def parallel_efficiency(self) -> float:
        """CPU-seconds per wall-clock-second, normalised by worker count.

        1.0 means every worker was busy the whole time; values sink with
        pool start-up cost, stragglers, and (single-core) oversubscription.
        """
        if self.wall_clock_seconds <= 0 or self.n_jobs <= 0:
            return 0.0
        return self.cpu_seconds / (self.wall_clock_seconds * self.n_jobs)

    def timing_table(self) -> str:
        """Aligned text block of the execution accounting."""
        lines = [
            f"{'workers':<22} {self.n_jobs}",
            f"{'wall clock [s]':<22} {self.wall_clock_seconds:.3f}",
            f"{'cpu total [s]':<22} {self.cpu_seconds:.3f}",
            f"{'completed runs':<22} {self.completed_runs}",
            f"{'failed runs':<22} {self.n_failed}",
            f"{'runs / second':<22} {self.runs_per_second:.3f}",
            f"{'parallel efficiency':<22} {self.parallel_efficiency:.2f}",
        ]
        return "\n".join(lines)

    def metrics_table(self) -> str:
        """Aggregate + per-worker telemetry tables (next to timing_table).

        Requires the study to have been run with ``collect_metrics=True``.
        """
        if self.metrics is None:
            raise ValueError(
                "study carries no telemetry; run with collect_metrics=True"
            )
        blocks = ["== aggregate ==", self.metrics.table()]
        for pid in sorted(self.worker_metrics):
            blocks.append(f"== worker pid {pid} ==")
            blocks.append(self.worker_metrics[pid].table())
        return "\n".join(blocks)

    def summary(self, controller: str, metric: str) -> MetricSummary:
        if controller not in self.summaries:
            raise KeyError(
                f"no controller {controller!r}; have {sorted(self.summaries)}"
            )
        metrics = self.summaries[controller]
        if metric not in metrics:
            raise KeyError(f"no metric {metric!r}; have {sorted(metrics)}")
        return metrics[metric]

    def table(self, metric: str = "mean_delay_ms") -> str:
        """Aligned text table of one metric across controllers."""
        lines = [
            f"{'controller':<16} {'mean':>10} {'std':>10} {'95% CI':>23}  (n={self.repetitions})"
        ]
        for name in sorted(self.summaries):
            s = self.summary(name, metric)
            lines.append(
                f"{name:<16} {s.mean:>10.3f} {s.std:>10.3f} "
                f"[{s.ci_low:>9.3f}, {s.ci_high:>9.3f}]"
            )
        return "\n".join(lines)


def default_skip_warmup(horizon: int) -> int:
    """The default warm-up slots dropped from delay averages.

    A quarter of the horizon, clamped so short horizons keep at least one
    measured slot (the bare ``max(horizon // 4, 1)`` made ``horizon=1``
    skip its only slot).
    """
    return max(min(horizon - 1, max(horizon // 4, 1)), 0)


def aggregate_work_results(
    work_results: Sequence[WorkResult],
    *,
    horizon: int,
    repetitions: int,
    confidence: float = 0.95,
    skip_warmup: Optional[int] = None,
    n_jobs: int = 1,
    wall_clock_seconds: float = 0.0,
) -> RepetitionStudy:
    """Aggregate a stream of work items into a :class:`RepetitionStudy`.

    The single summarisation path shared by :func:`run_repetitions` and
    the campaign-wide scheduler (:mod:`repro.campaigns.scheduler`):
    whoever executed the ``(repetition, controller)`` grid, the same
    per-controller metric summaries (``mean_delay_ms``,
    ``mean_decision_s``, ``total_churn``) come out of the same work-item
    stream — which is what makes scheduler summaries bit-identical to the
    sequential path's.  ``work_results`` may arrive in any order; items
    are sorted into the serial ``(repetition, controller)`` iteration
    order first.  Failed items are recorded in the study's ``failures``
    and excluded; when *every* item failed, a :class:`RuntimeError`
    carries the first traceback.  ``n_jobs`` and ``wall_clock_seconds``
    only fill the study's execution accounting.
    """
    require_positive("horizon", horizon)
    require_positive("repetitions", repetitions)
    if skip_warmup is None:
        skip_warmup = default_skip_warmup(horizon)
    if skip_warmup >= horizon:
        raise ValueError(
            f"skip_warmup ({skip_warmup}) must be below horizon ({horizon})"
        )
    work_results = sorted(
        work_results, key=lambda r: (r.repetition, r.controller_index)
    )

    aggregate_metrics: Optional[MetricsRegistry] = None
    worker_metrics: Dict[int, MetricsRegistry] = {}
    for item in work_results:
        if item.metrics is None:
            continue
        snapshot = MetricsRegistry.from_snapshot(item.metrics)
        if aggregate_metrics is None:
            aggregate_metrics = MetricsRegistry()
        aggregate_metrics.merge(snapshot)
        per_worker = worker_metrics.setdefault(item.pid, MetricsRegistry())
        per_worker.merge(snapshot)

    # metric values are keyed by the repetition that produced them, so a
    # paired comparison can join on repetition instead of list position
    # (failures drop per (repetition, controller) item — positions lie).
    metric_values: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    raw: Dict[str, List[SimulationResult]] = {}
    failed_items: List[RepetitionFailure] = []
    completed = 0
    for item in work_results:
        if not item.ok:
            failed_items.append(item.failure())
            continue
        completed += 1
        result = item.result
        store = metric_values.setdefault(item.controller_name, {})
        store.setdefault("mean_delay_ms", []).append(
            (item.repetition, result.mean_delay_ms(skip_warmup=skip_warmup))
        )
        store.setdefault("mean_decision_s", []).append(
            (item.repetition, result.mean_decision_seconds())
        )
        store.setdefault("total_churn", []).append(
            (item.repetition, float(result.cache_churn.sum()))
        )
        raw.setdefault(item.controller_name, []).append(result)

    if failed_items:
        for failure in failed_items:
            logger.warning("repetition failed: %s", failure)
        logger.warning(
            "%d of %d runs failed and were excluded from the summaries",
            len(failed_items),
            len(work_results),
        )
    if not metric_values:
        details = "\n".join(f.traceback for f in failed_items[:1])
        raise RuntimeError(
            f"all {len(work_results)} runs failed; first traceback:\n{details}"
        )

    summaries = {
        name: {
            metric: _summarise(
                metric,
                [value for _, value in pairs],
                confidence,
                repetitions=[rep for rep, _ in pairs],
            )
            for metric, pairs in metrics.items()
        }
        for name, metrics in metric_values.items()
    }
    return RepetitionStudy(
        horizon=horizon,
        repetitions=repetitions,
        summaries=summaries,
        raw=raw,
        n_jobs=n_jobs,
        wall_clock_seconds=wall_clock_seconds,
        cpu_seconds=float(sum(r.cpu_seconds for r in work_results)),
        completed_runs=completed,
        failures=failed_items,
        metrics=aggregate_metrics,
        worker_metrics=worker_metrics,
    )


def run_repetitions(
    build: ScenarioBuilder,
    seed: int,
    repetitions: int,
    horizon: int,
    *,
    demands_known: bool = True,
    skip_warmup: Optional[int] = None,
    confidence: float = 0.95,
    config: Optional[RunConfig] = None,
    n_controllers: Optional[int] = None,
    failures: Optional[FailureSchedule] = None,
    n_jobs: object = UNSET,
    collect_metrics: object = UNSET,
    max_retries: object = UNSET,
    checkpoint_dir: object = UNSET,
    checkpoint_every: object = UNSET,
    resume: object = UNSET,
) -> RepetitionStudy:
    """Run ``build`` across ``repetitions`` seeds and aggregate metrics.

    ``build`` receives a per-repetition :class:`RngRegistry` and returns
    ``(network, demand_model, controllers)``; every controller is run on
    the same world of its repetition.  Aggregated metrics per controller:
    ``mean_delay_ms``, ``mean_decision_s``, ``total_churn``.

    ``config`` (a :class:`repro.sim.RunConfig`) carries the execution
    knobs — one spelling shared with every other entry point:

    * ``jobs`` selects the execution mode: ``1`` (default) runs
      in-process, anything else fans the ``(repetition, controller)``
      grid over a process pool (``None``/``0`` = all cores, negative =
      joblib-style count-back) with bit-identical summaries.  The
      builder must be picklable for ``jobs != 1``.
    * ``collect_metrics`` is a tri-state: ``True`` records
      :mod:`repro.obs` telemetry per work item and attaches the merged
      aggregate (``study.metrics``) and the per-worker breakdown
      (``study.worker_metrics``, keyed by executing pid) to the study —
      rendered by :meth:`RepetitionStudy.metrics_table`; ``None``
      (default) auto-enables collection when a registry is active in
      the calling process; ``False`` keeps collection off
      unconditionally, active registry or not.
    * ``retries`` re-executes crashed work items (bounded rounds, fresh
      workers) before recording them as failures; ``checkpoint_dir`` /
      ``resume`` persist completed items so an interrupted sweep
      restarted with ``resume=True`` executes only the missing
      repetitions, and ``checkpoint_every`` adds slot-level snapshots
      inside each item — all passed through to
      :meth:`repro.sim.parallel.ParallelRunner.run`, which documents
      the exact semantics.

    The pre-``RunConfig`` keywords (``n_jobs``, ``collect_metrics``,
    ``max_retries``, ``checkpoint_dir``, ``checkpoint_every``,
    ``resume``) still work but raise :class:`DeprecationWarning`; mixing
    them with ``config=`` is a :class:`TypeError`.

    ``n_controllers`` (optional) skips the probe build the pool path
    otherwise needs to size its work grid.

    A repetition that raises is recorded in the study's ``failures`` with
    its traceback and excluded from the summaries; the count is logged.

    ``failures`` applies one scripted
    :class:`~repro.sim.failures.FailureSchedule` (station outages /
    capacity degradations) inside every repetition's run.
    """
    require_positive("repetitions", repetitions)
    require_positive("horizon", horizon)
    require_open_probability("confidence", confidence)
    if skip_warmup is None:
        skip_warmup = default_skip_warmup(horizon)
    if skip_warmup >= horizon:
        raise ValueError(
            f"skip_warmup ({skip_warmup}) must be below horizon ({horizon})"
        )
    run_config = resolve_run_config(
        "run_repetitions",
        config,
        {
            "n_jobs": n_jobs,
            "collect_metrics": collect_metrics,
            "max_retries": max_retries,
            "checkpoint_dir": checkpoint_dir,
            "checkpoint_every": checkpoint_every,
            "resume": resume,
        },
    )

    runner = ParallelRunner(n_jobs=run_config.jobs)
    wall_start = time.perf_counter()
    work_results: List[WorkResult] = runner.run(
        build,
        seed=seed,
        repetitions=repetitions,
        horizon=horizon,
        demands_known=demands_known,
        n_controllers=n_controllers,
        # Tri-state forwarded verbatim: an explicit False must stay off
        # even when a parent obs registry is active (the old
        # ``collect_metrics or None`` silently re-enabled it).
        collect_metrics=run_config.collect_metrics,
        failures=failures,
        max_retries=run_config.retries,
        checkpoint_dir=run_config.checkpoint_dir,
        checkpoint_every=run_config.checkpoint_every,
        resume=run_config.resume,
    )
    wall_clock = time.perf_counter() - wall_start
    return aggregate_work_results(
        work_results,
        horizon=horizon,
        repetitions=repetitions,
        confidence=confidence,
        skip_warmup=skip_warmup,
        n_jobs=runner.n_jobs,
        wall_clock_seconds=wall_clock,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired across-seed comparison of two controllers on one metric.

    Pairs are joined by repetition index, not list position: when a
    repetition crashed for exactly one of the two controllers, it cannot
    be paired and is reported in ``dropped_repetitions`` instead of being
    silently matched against a different world.
    """

    metric: str
    name_a: str
    name_b: str
    mean_difference: float  # mean(b - a): positive => a is better (lower)
    wins_a: int
    wins_b: int
    ties: int
    sign_test_p: float
    #: Repetition indices actually paired (present for both controllers).
    paired_repetitions: Tuple[int, ...] = ()
    #: Repetitions with a value for exactly one controller — unpaired.
    dropped_repetitions: Tuple[int, ...] = ()

    @property
    def n_pairs(self) -> int:
        return len(self.paired_repetitions)

    @property
    def a_wins_majority(self) -> bool:
        return self.wins_a > self.wins_b


def compare_controllers(
    study: RepetitionStudy,
    name_a: str,
    name_b: str,
    metric: str = "mean_delay_ms",
) -> PairedComparison:
    """Paired comparison: per-seed differences, win counts, sign test.

    The two controllers must have been run in the same study (same worlds
    per repetition), which is what makes the pairing valid.  Values are
    joined on their repetition index: a repetition missing on one side
    (its work item crashed) is dropped from the pairing and surfaced in
    :attr:`PairedComparison.dropped_repetitions` — the previous positional
    zip silently compared different worlds whenever the two controllers
    failed on *different* repetitions (equal-length lists, shifted keys).
    """
    a = study.summary(name_a, metric).by_repetition()
    b = study.summary(name_b, metric).by_repetition()
    common = sorted(set(a) & set(b))
    dropped = tuple(sorted(set(a) ^ set(b)))
    if not common:
        raise ValueError(
            f"controllers {name_a!r} and {name_b!r} share no completed "
            f"repetitions on {metric!r}; nothing to pair"
        )
    if dropped:
        logger.warning(
            "paired comparison %s vs %s: repetitions %s completed for only "
            "one controller and were dropped from the pairing",
            name_a,
            name_b,
            list(dropped),
        )
    differences = np.asarray([b[rep] - a[rep] for rep in common])
    wins_a = int(np.sum(differences > 0))
    wins_b = int(np.sum(differences < 0))
    ties = int(np.sum(differences == 0))
    decisive = wins_a + wins_b
    if decisive > 0:
        sign_p = float(
            scipy_stats.binomtest(wins_a, decisive, 0.5).pvalue
        )
    else:
        sign_p = 1.0
    return PairedComparison(
        metric=metric,
        name_a=name_a,
        name_b=name_b,
        mean_difference=float(differences.mean()),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        sign_test_p=sign_p,
        paired_repetitions=tuple(common),
        dropped_repetitions=dropped,
    )
