"""One run configuration for every execution entry point.

Before this module, each entry point spelt the same concepts
differently: ``run_simulation`` took ``checkpoint=CheckpointConfig(...)``
while ``run_repetitions`` took ``checkpoint_dir=...``; worker counts
were ``n_jobs`` here and ``--jobs`` on the CLI; retry bounds were
``max_retries``.  :class:`RunConfig` is the single spelling — **one
documented name per concept** — accepted by :func:`repro.sim.run_simulation`,
:func:`repro.sim.run_repetitions` and :func:`repro.campaigns.run_campaign`
through a ``config=`` parameter:

=================  ==============================================
canonical name     concept
=================  ==============================================
``jobs``           worker count (``None``/``0`` = all cores,
                   negative = joblib-style count-back)
``retries``        bounded re-execution rounds for crashed items
``collect_metrics``  tri-state telemetry switch (``None`` = auto)
``checkpoint_dir``   snapshot directory
``checkpoint_every`` slot-level snapshot cadence
``resume``           restore-and-continue switch
``scheduler``        campaign execution engine (campaigns only)
=================  ==============================================

The old spellings (``checkpoint=CheckpointConfig(...)``, ``n_jobs=``,
``max_retries=``) still work as keyword aliases but raise a
:class:`DeprecationWarning`; passing both ``config=`` and a deprecated
alias is a :class:`TypeError` (two sources of truth for the same knob is
exactly the bug this module removes).  :func:`resolve_run_config` is the
shared funnel every entry point routes through.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.state import CheckpointConfig

__all__ = ["UNSET", "RunConfig", "resolve_run_config"]


class _Unset:
    """Sentinel distinguishing "not passed" from meaningful ``None``.

    ``n_jobs=None`` means "all cores", so ``None`` cannot mark an absent
    deprecated kwarg — this singleton does.
    """

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: The "argument not passed" sentinel used by deprecated-alias kwargs.
UNSET = _Unset()

#: Default slot-level snapshot cadence when only a directory is given
#: (mirrors :class:`repro.state.CheckpointConfig`'s default).
_DEFAULT_CHECKPOINT_EVERY = 10


@dataclass(frozen=True)
class RunConfig:
    """Execution knobs shared by every run entry point.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` (default) runs in-process; ``None`` or
        ``0`` means all cores; negative counts back joblib-style
        (``-1`` == all cores).  Replaces the ``n_jobs`` kwarg.
    retries:
        Bounded re-execution rounds for crashed work items before they
        are recorded as failures.  Replaces ``max_retries``.
    collect_metrics:
        Tri-state telemetry switch: ``True`` records :mod:`repro.obs`
        telemetry per work item, ``False`` keeps it off unconditionally,
        ``None`` (default) auto-enables when a registry is active.
    checkpoint_dir:
        Snapshot directory; enables checkpointing when set.  Replaces
        both ``checkpoint_dir=`` and ``checkpoint=CheckpointConfig(directory=...)``.
    checkpoint_every:
        Slot-level snapshot cadence inside each run; ``None`` defers to
        the subsystem default (10) when ``checkpoint_dir`` is set.
    resume:
        Restore an existing snapshot and continue; always safe to pass
        (a missing snapshot starts from scratch).
    scheduler:
        Campaign execution engine (``"auto"``/``"global"``/``"cell"``);
        only :func:`repro.campaigns.run_campaign` reads it.
    """

    jobs: Optional[int] = 1
    retries: int = 0
    collect_metrics: Optional[bool] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_every: Optional[int] = None
    resume: bool = False
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        # No cross-field constraints on purpose: ``resume`` without a
        # ``checkpoint_dir`` is meaningful to run_campaign (the campaign
        # out_dir is the persistence root) and harmlessly inert to
        # run_simulation.  Each entry point reads the knobs it owns.
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )

    def to_checkpoint_config(self) -> Optional[CheckpointConfig]:
        """The single-run checkpoint policy, or ``None`` when disabled."""
        if self.checkpoint_dir is None:
            return None
        return CheckpointConfig(
            directory=self.checkpoint_dir,
            every_n_slots=(
                self.checkpoint_every
                if self.checkpoint_every is not None
                else _DEFAULT_CHECKPOINT_EVERY
            ),
            resume=self.resume,
        )

    @classmethod
    def from_checkpoint_config(
        cls, checkpoint: Optional[CheckpointConfig], **overrides: Any
    ) -> "RunConfig":
        """Lift a legacy :class:`CheckpointConfig` into a run config."""
        if checkpoint is None:
            return cls(**overrides)
        return cls(
            checkpoint_dir=checkpoint.directory,
            checkpoint_every=checkpoint.every_n_slots,
            resume=checkpoint.resume,
            **overrides,
        )


def _canonical_value(name: str, value: Any) -> Tuple[str, Any]:
    """Map one deprecated kwarg to its ``(canonical_field, value)``."""
    if name == "n_jobs":
        return "jobs", value
    if name == "max_retries":
        return "retries", value
    if name == "checkpoint":
        raise AssertionError("'checkpoint' is expanded by the caller")
    # checkpoint_dir / checkpoint_every / resume / collect_metrics kept
    # their names; only the calling convention (config=) changed.
    return name, value


def resolve_run_config(
    where: str,
    config: Optional[RunConfig],
    deprecated: Mapping[str, Any],
    *,
    default: Optional[RunConfig] = None,
) -> RunConfig:
    """Merge a ``config=`` argument with any deprecated alias kwargs.

    ``deprecated`` maps old kwarg names to their passed values, with
    :data:`UNSET` marking "not passed" (``None`` stays meaningful —
    ``n_jobs=None`` requests all cores).  Every explicitly-passed alias
    raises a :class:`DeprecationWarning` naming the canonical spelling;
    mixing ``config=`` with any alias raises :class:`TypeError` — one
    source of truth per knob.

    ``where`` names the entry point in the warning text.  ``default``
    seeds the result when neither source provides a value (entry points
    keep their historical defaults this way).
    """
    passed = {
        name: value
        for name, value in deprecated.items()
        # An explicit ``checkpoint=None`` is the old spelling of "no
        # checkpointing" — treat it as not passed rather than warning on
        # a no-op.
        if value is not UNSET and not (name == "checkpoint" and value is None)
    }
    if config is not None and passed:
        raise TypeError(
            f"{where}() got both config= and deprecated keyword(s) "
            f"{sorted(passed)}; move them into RunConfig"
        )
    if config is not None:
        return config
    result = default if default is not None else RunConfig()
    if not passed:
        return result
    updates: Dict[str, Any] = {}
    for name, value in passed.items():
        if name == "checkpoint":
            if value is not None:
                updates["checkpoint_dir"] = value.directory
                updates["checkpoint_every"] = value.every_n_slots
                updates["resume"] = value.resume
            warnings.warn(
                f"{where}(checkpoint=CheckpointConfig(...)) is deprecated; "
                f"pass config=RunConfig(checkpoint_dir=..., "
                f"checkpoint_every=..., resume=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            continue
        canonical, mapped = _canonical_value(name, value)
        updates[canonical] = mapped
        if canonical != name:
            warnings.warn(
                f"{where}({name}=...) is deprecated; pass "
                f"config=RunConfig({canonical}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        else:
            warnings.warn(
                f"{where}({name}=...) as a bare keyword is deprecated; "
                f"pass config=RunConfig({name}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    valid = {f.name for f in fields(RunConfig)}
    unknown = set(updates) - valid
    if unknown:
        raise TypeError(f"{where}() got unknown run option(s) {sorted(unknown)}")
    return replace(result, **updates)
