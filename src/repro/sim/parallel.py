"""Process-parallel repetition execution (the many-seed evaluation engine).

Every figure in the paper is an average over 80 independently seeded
topologies (§VI), and the serial loop in :mod:`repro.sim.multirun` was the
single biggest wall-clock cost of regenerating them.  This module fans the
``(repetition, controller)`` grid of a repetition study out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the results
**bit-identical** to the serial path:

* every repetition derives its own :class:`~repro.utils.seeding.RngRegistry`
  via ``RngRegistry(seed).child(f"rep{r}")`` — the worker rebuilds the
  repetition's world from that registry, and because all delay/demand
  realisations are slot-keyed (functions of ``(seed, slot)`` only, never of
  sampling order) a rebuilt world realises exactly the same trajectories as
  the shared serial world;
* each controller reads its own named stream from the registry, so running
  controller ``j`` alone in a worker consumes exactly the state it would
  have consumed in the serial loop.

Failure semantics: a repetition that raises is captured as a
:class:`RepetitionFailure` (message + traceback + work-item coordinates)
and excluded from aggregation instead of killing the study; the caller
logs the count.  Hard worker deaths (segfault, OOM-kill) still propagate
as :class:`concurrent.futures.process.BrokenProcessPool` — those are
infrastructure errors, not scenario errors.

The scenario builder must be picklable (a module-level function, a
``functools.partial`` of one, or an instance of a picklable callable
class) because it is shipped to worker processes.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.sim.config import RunConfig
from repro.sim.engine import run_simulation
from repro.sim.failures import FailureSchedule
from repro.sim.metrics import SimulationResult
from repro.state import (
    WORK_RESULT_KIND,
    CheckpointConfig,
    SweepManifest,
    completed_items,
    finalise_controllers,
    load_checkpoint,
    result_path,
    save_checkpoint,
)
from repro.utils.seeding import RngRegistry
from repro.utils.validation import require_non_negative, require_positive
from repro.workload.demand import DemandModel

__all__ = [
    "ScenarioBuilder",
    "World",
    "WorkItem",
    "WorkResult",
    "RepetitionFailure",
    "ParallelRunner",
    "resolve_n_jobs",
    "repetition_registry",
    "build_world",
    "run_item_on_world",
    "persist_work_result",
    "load_work_result",
    "controller_names_from_results",
    "make_worker_pool",
]

logger = logging.getLogger(__name__)

# A scenario builder returns the world for one repetition.
ScenarioBuilder = Callable[
    [RngRegistry], Tuple[MECNetwork, DemandModel, List[Controller]]
]

#: One repetition's fully built scenario: network, demand model and the
#: controller line-up (indexable by ``WorkItem.controller_index``).
World = Tuple[MECNetwork, DemandModel, List[Controller]]

#: Environment marker set (via :func:`_mark_pool_worker`) in every process
#: a repro-owned pool spawns.  :func:`resolve_n_jobs` reads it to refuse
#: nested parallelism: code running inside a worker that forwards its own
#: ``n_jobs`` would otherwise multiply processes (campaign-wide workers ×
#: per-cell workers) and oversubscribe the machine.
_POOL_WORKER_ENV = "REPRO_POOL_WORKER"


def _mark_pool_worker() -> None:
    """Pool initializer: brand this process as a repro pool worker."""
    os.environ[_POOL_WORKER_ENV] = "1"


def make_worker_pool(n_workers: int) -> ProcessPoolExecutor:
    """A fork-preferring process pool whose workers carry the nested-
    parallelism marker (see :func:`resolve_n_jobs`).

    All repro-owned pools — :class:`ParallelRunner`'s per-sweep pool and
    the campaign-wide scheduler's persistent pool — are created through
    this factory so the oversubscription guard holds everywhere.
    """
    require_positive("n_workers", n_workers)
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=_preferred_context(),
        initializer=_mark_pool_worker,
    )


def repetition_registry(seed: int, repetition: int) -> RngRegistry:
    """The canonical per-repetition registry: ``child(f"rep{r}")``.

    Both the serial and the parallel paths derive repetition worlds through
    this single helper, which is what makes their results bit-identical.
    """
    return RngRegistry(seed=seed).child(f"rep{repetition}")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``0`` means "all cores"; negative values count back from
    the core count joblib-style (``-1`` == all cores, ``-2`` == all but
    one); positive values are taken literally.

    Inside a repro pool worker (marked by :func:`make_worker_pool`'s
    initializer) any multi-worker request is clamped to ``1`` with a
    warning: the process is already one of N workers, and spawning its
    own pool would oversubscribe the machine by the product of the two
    worker counts.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        resolved = cores
    else:
        n_jobs = int(n_jobs)
        resolved = max(1, cores + 1 + n_jobs) if n_jobs < 0 else n_jobs
    if resolved > 1 and os.environ.get(_POOL_WORKER_ENV):
        logger.warning(
            "n_jobs=%r requested inside a pool worker; clamping to 1 "
            "(nested parallelism would oversubscribe the machine)",
            n_jobs,
        )
        return 1
    return resolved


@dataclass(frozen=True)
class WorkItem:
    """One cell of the repetition × controller grid."""

    repetition: int
    controller_index: int


@dataclass(frozen=True)
class RepetitionFailure:
    """A crashed work item: recorded, logged, excluded from summaries."""

    repetition: int
    controller_index: int
    controller_name: Optional[str]  # None when build() itself crashed
    error: str
    traceback: str

    def __str__(self) -> str:
        who = self.controller_name or f"controller#{self.controller_index}"
        return f"rep{self.repetition}/{who}: {self.error}"


@dataclass(frozen=True)
class WorkResult:
    """Outcome of one work item, successful or not, with timing.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict of the
    telemetry the item recorded (None when collection was off) and ``pid``
    the process that executed it — the parent groups snapshots by ``pid``
    for the per-worker breakdown.
    """

    repetition: int
    controller_index: int
    controller_name: Optional[str]
    result: Optional[SimulationResult]
    error: Optional[str]
    error_traceback: Optional[str]
    wall_seconds: float
    cpu_seconds: float
    metrics: Optional[dict] = None
    pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def failure(self) -> RepetitionFailure:
        if self.ok:
            raise ValueError("work item succeeded; no failure to report")
        return RepetitionFailure(
            repetition=self.repetition,
            controller_index=self.controller_index,
            controller_name=self.controller_name,
            error=self.error,
            traceback=self.error_traceback or "",
        )


def _item_checkpoint(
    sweep_dir: Optional[Path], item: WorkItem, every: Optional[int]
) -> Optional[CheckpointConfig]:
    """Per-item engine checkpoint config (slot-level snapshots).

    Each work item gets its own snapshot directory so identically-named
    controllers in different repetitions cannot collide.  ``resume`` is
    always on: a fresh item simply has no snapshot to pick up, while a
    retried or restarted item continues from its last completed slots
    instead of replaying the whole horizon.
    """
    if sweep_dir is None or every is None:
        return None
    return CheckpointConfig(
        directory=sweep_dir
        / "slots"
        / f"rep{item.repetition:05d}-ctrl{item.controller_index:03d}",
        every_n_slots=every,
        resume=True,
    )


def build_world(build: ScenarioBuilder, seed: int, repetition: int) -> World:
    """Build one repetition's world from its canonical registry.

    Thin composition of ``build`` with :func:`repetition_registry`; both
    execution paths (per-item rebuilds and shared-world batches) go
    through it, so a world is always derived the same way.
    """
    return build(repetition_registry(seed, repetition))


def run_item_on_world(
    world: World,
    item: WorkItem,
    horizon: int,
    *,
    demands_known: bool = True,
    collect_metrics: bool = False,
    checkpoint: Optional[CheckpointConfig] = None,
    failures: Optional[FailureSchedule] = None,
    trace: Optional["obs.TraceWriter"] = None,
) -> WorkResult:
    """Run one controller of an already-built world; never raises.

    The reusable core of every execution path: all exceptions are
    converted to a failed :class:`WorkResult` so one bad item cannot kill
    a study.  Because world realisations are slot-keyed and controller
    streams name-keyed, running item ``j`` on a shared world build is
    observationally identical to running it on a fresh rebuild — which is
    what lets callers batch several items of one repetition onto one
    build.  With ``collect_metrics`` the item records into a fresh
    :class:`repro.obs.MetricsRegistry` whose snapshot rides back on the
    :class:`WorkResult` (plain dict — picklable); ``trace`` threads a
    parent trace writer into that registry (in-process callers only:
    writers are not picklable).  ``checkpoint`` enables the engine's
    slot-level snapshots for this item (see :func:`_item_checkpoint`);
    the snapshot is deleted once the item completes — the persisted work
    result is the durable artifact.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    name: Optional[str] = None
    registry = obs.MetricsRegistry(trace=trace) if collect_metrics else None
    try:
        network, demand_model, controllers = world
        controller = controllers[item.controller_index]
        name = controller.name
        result: Optional[SimulationResult] = run_simulation(
            network,
            demand_model,
            controller,
            horizon=horizon,
            demands_known=demands_known,
            metrics=registry,
            config=RunConfig.from_checkpoint_config(checkpoint),
            failures=failures,
        )
        if checkpoint is not None:
            snapshot = checkpoint.path_for(controller.name)
            if snapshot.exists():
                snapshot.unlink()
        error = None
        error_tb = None
    except Exception as exc:  # noqa: BLE001 — graceful degradation by design
        result = None
        error = f"{type(exc).__name__}: {exc}"
        error_tb = traceback.format_exc()
    return WorkResult(
        repetition=item.repetition,
        controller_index=item.controller_index,
        controller_name=name,
        result=result,
        error=error,
        error_traceback=error_tb,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
        metrics=registry.snapshot() if registry is not None else None,
        pid=os.getpid(),
    )


def _execute_work_item(
    build: ScenarioBuilder,
    seed: int,
    item: WorkItem,
    horizon: int,
    demands_known: bool,
    collect_metrics: bool = False,
    checkpoint: Optional[CheckpointConfig] = None,
    failures: Optional[FailureSchedule] = None,
) -> WorkResult:
    """Rebuild the repetition's world and run one controller over it.

    The pool path's per-item entry point: :func:`build_world` +
    :func:`run_item_on_world`, with the build time folded into the item's
    wall/CPU accounting (each item pays its own rebuild here).  A build
    crash is reported as a failed :class:`WorkResult` for this item.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        world = build_world(build, seed, item.repetition)
    except Exception as exc:  # noqa: BLE001 — graceful degradation by design
        return WorkResult(
            repetition=item.repetition,
            controller_index=item.controller_index,
            controller_name=None,
            result=None,
            error=f"{type(exc).__name__}: {exc}",
            error_traceback=traceback.format_exc(),
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
            pid=os.getpid(),
        )
    item_result = run_item_on_world(
        world,
        item,
        horizon,
        demands_known=demands_known,
        collect_metrics=collect_metrics,
        checkpoint=checkpoint,
        failures=failures,
    )
    return replace(
        item_result,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
    )


def persist_work_result(directory: Path, item: WorkResult) -> None:
    """Write one completed work item's snapshot into the sweep directory."""
    if item.result is None:
        return
    path = result_path(directory, item.repetition, item.controller_index)
    with obs.span("state.save"):
        save_checkpoint(
            path,
            {
                "controller_name": item.controller_name,
                "result": item.result.state_dict(),
                "wall_seconds": item.wall_seconds,
                "cpu_seconds": item.cpu_seconds,
            },
            kind=WORK_RESULT_KIND,
            meta={
                "repetition": item.repetition,
                "controller_index": item.controller_index,
            },
        )
    obs.inc("state.save")


def load_work_result(
    directory: Path, repetition: int, controller_index: int
) -> WorkResult:
    """Rebuild a persisted work item as a completed :class:`WorkResult`.

    Telemetry snapshots are not persisted (they describe the original
    process), so resumed items carry ``metrics=None``.
    """
    path = result_path(directory, repetition, controller_index)
    with obs.span("state.load"):
        state, _meta = load_checkpoint(path, kind=WORK_RESULT_KIND)
    obs.inc("state.load")
    name = state.get("controller_name")
    return WorkResult(
        repetition=repetition,
        controller_index=controller_index,
        controller_name=str(name) if name is not None else None,
        result=SimulationResult.from_state(state["result"]),
        error=None,
        error_traceback=None,
        wall_seconds=float(state["wall_seconds"]),
        cpu_seconds=float(state["cpu_seconds"]),
        metrics=None,
        pid=0,
    )


def controller_names_from_results(
    results: Sequence[WorkResult],
) -> Dict[int, str]:
    """Controller index -> name mapping learned from successful items.

    Input shape for :func:`repro.state.finalise_controllers`: names are
    only trusted from items that completed (a failed item may not have
    reached controller construction).
    """
    names: Dict[int, str] = {}
    for item in results:
        if item.ok and item.controller_name is not None:
            names.setdefault(item.controller_index, item.controller_name)
    return names


class ParallelRunner:
    """Fan a repetition study's work items over a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` executes in-process (no pool, no pickling
        requirement on the builder); ``None``/``0`` uses every core;
        negative counts back from the core count.  See
        :func:`resolve_n_jobs`.

    The runner is stateless across :meth:`run` calls and safe to reuse.
    """

    def __init__(self, n_jobs: Optional[int] = 1):
        self.n_jobs = resolve_n_jobs(n_jobs)

    # ------------------------------------------------------------------ #

    def run(
        self,
        build: ScenarioBuilder,
        seed: int,
        repetitions: int,
        horizon: int,
        *,
        demands_known: bool = True,
        n_controllers: Optional[int] = None,
        collect_metrics: Optional[bool] = None,
        failures: Optional[FailureSchedule] = None,
        max_retries: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        resume: bool = False,
    ) -> List[WorkResult]:
        """Execute the full repetition × controller grid.

        Returns one :class:`WorkResult` per work item, sorted by
        ``(repetition, controller_index)`` — the serial iteration order —
        regardless of completion order.  ``n_controllers`` skips the probe
        build when the caller already knows the controller count (building
        a scenario can be expensive, e.g. GAN pretraining).

        ``collect_metrics`` attaches a per-item telemetry snapshot to every
        :class:`WorkResult` (see :mod:`repro.obs`).  The default ``None``
        auto-enables collection when a registry is active in the calling
        process (e.g. the CLI's ``--metrics-out``); item snapshots are then
        also merged into that registry, so parent-side telemetry works the
        same for serial and pooled execution.  An explicit ``False`` keeps
        collection off even under an active registry.

        ``failures`` applies one scripted
        :class:`~repro.sim.failures.FailureSchedule` inside every work
        item's simulation (scripted outages are part of the scenario, so
        the same schedule runs in every repetition; it must be picklable
        for the pool path).

        ``max_retries`` bounds crash-tolerant retry rounds: after a round,
        every failed item is re-executed — in the pool path on the *same*
        persistent pool (a broken pool, surfacing as
        ``BrokenProcessPool``, is replaced by a fresh one so hard worker
        deaths are retried too), in the serial path by rebuilding the
        repetition's world.  Because worlds are slot-keyed and controller
        streams name-keyed, a retried item reproduces exactly the result
        an untroubled first attempt would have had.  With the default
        ``0``, pool infrastructure errors propagate as before and
        scenario failures stay recorded.

        ``checkpoint_dir`` persists every completed item as a
        ``work-result`` snapshot next to a sweep manifest (see
        :mod:`repro.state.manifest`); ``resume=True`` loads the completed
        items back (after a manifest identity check) and executes only the
        missing ones, reproducing the uninterrupted study's statistics.
        ``checkpoint_every`` additionally turns on the engine's slot-level
        snapshots inside each item (every N completed slots, under
        ``<checkpoint_dir>/slots/``), so a killed or retried item resumes
        mid-horizon instead of replaying from slot 0; it requires
        ``checkpoint_dir``.
        """
        require_positive("repetitions", repetitions)
        require_positive("horizon", horizon)
        require_non_negative("max_retries", max_retries)
        if checkpoint_every is not None:
            require_positive("checkpoint_every", checkpoint_every)
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        parent_registry = obs.active_registry()
        if collect_metrics is None:
            collect_metrics = parent_registry is not None
        sweep_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None

        by_key: Dict[Tuple[int, int], WorkResult] = {}
        manifest: Optional[SweepManifest] = None
        if sweep_dir is not None:
            manifest = SweepManifest(
                seed=int(seed),
                repetitions=int(repetitions),
                horizon=int(horizon),
                demands_known=bool(demands_known),
            )
            if resume and SweepManifest.exists(sweep_dir):
                SweepManifest.read(sweep_dir).require_compatible(manifest)
                for (r, c), _path in sorted(completed_items(sweep_dir).items()):
                    if r < repetitions:
                        by_key[(r, c)] = load_work_result(sweep_dir, r, c)
            manifest.write(sweep_dir)
        done: Set[Tuple[int, int]] = set(by_key)

        pool: Optional[ProcessPoolExecutor] = None
        pool_ok = True
        try:
            if self.n_jobs == 1:
                executed = self._run_serial(
                    build, seed, range(repetitions), horizon, demands_known,
                    collect_metrics, done, sweep_dir, checkpoint_every,
                    failures=failures,
                )
            else:
                if n_controllers is None:
                    n_controllers = self._probe_controller_count(build, seed)
                require_positive("n_controllers", n_controllers)
                items = [
                    WorkItem(repetition=r, controller_index=c)
                    for r in range(repetitions)
                    for c in range(n_controllers)
                    if (r, c) not in done
                ]
                if items:
                    pool = make_worker_pool(min(self.n_jobs, len(items)))
                    executed, pool_ok = self._run_pool_items(
                        pool, build, seed, items, horizon, demands_known,
                        collect_metrics, sweep_dir, checkpoint_every,
                        capture_pool_errors=max_retries > 0, failures=failures,
                    )
                else:
                    executed = []
            for item in executed:
                by_key[(item.repetition, item.controller_index)] = item

            for _round in range(max_retries):
                failed = [r for r in by_key.values() if not r.ok]
                if not failed:
                    break
                obs.inc("sim.retries", len(failed))
                if self.n_jobs == 1:
                    # A serial build crash loses the whole repetition, so retry
                    # at repetition granularity, skipping items already done.
                    repetitions_to_retry = sorted({f.repetition for f in failed})
                    done_now = {k for k, r in by_key.items() if r.ok}
                    retried = self._run_serial(
                        build, seed, repetitions_to_retry, horizon,
                        demands_known, collect_metrics, done_now, sweep_dir,
                        checkpoint_every, failures=failures,
                    )
                else:
                    retry_items = [
                        WorkItem(
                            repetition=f.repetition,
                            controller_index=f.controller_index,
                        )
                        for f in failed
                    ]
                    # Retries reuse the persistent pool; only a broken one
                    # (hard worker death) is torn down and replaced.
                    if pool is None or not pool_ok:
                        if pool is not None:
                            pool.shutdown(wait=False)
                        pool = make_worker_pool(
                            min(self.n_jobs, len(retry_items))
                        )
                        pool_ok = True
                    retried, pool_ok = self._run_pool_items(
                        pool, build, seed, retry_items, horizon, demands_known,
                        collect_metrics, sweep_dir, checkpoint_every,
                        capture_pool_errors=True, failures=failures,
                    )
                for item in retried:
                    by_key[(item.repetition, item.controller_index)] = item
        finally:
            if pool is not None:
                pool.shutdown()

        results = sorted(
            by_key.values(), key=lambda r: (r.repetition, r.controller_index)
        )
        if sweep_dir is not None and manifest is not None:
            self._finalise_manifest(sweep_dir, manifest, results)
        if parent_registry is not None and collect_metrics:
            for item in results:
                if item.metrics is not None:
                    parent_registry.merge(
                        obs.MetricsRegistry.from_snapshot(item.metrics)
                    )
        return results

    @staticmethod
    def _finalise_manifest(
        sweep_dir: Path, manifest: SweepManifest, results: List[WorkResult]
    ) -> None:
        """Record controller names in the manifest once they are known."""
        finalise_controllers(
            sweep_dir, manifest, controller_names_from_results(results)
        )

    def _run_pool_items(
        self,
        pool: ProcessPoolExecutor,
        build: ScenarioBuilder,
        seed: int,
        items: Sequence[WorkItem],
        horizon: int,
        demands_known: bool,
        collect_metrics: bool,
        sweep_dir: Optional[Path],
        checkpoint_every: Optional[int],
        capture_pool_errors: bool,
        failures: Optional[FailureSchedule] = None,
    ) -> Tuple[List[WorkResult], bool]:
        """Execute ``items`` on the given pool, persisting as they land.

        Returns ``(results, pool_ok)``; ``pool_ok`` is ``False`` when a
        submission failed at the pool level (``BrokenProcessPool``), which
        tells the caller to replace the pool before the next round.  With
        ``capture_pool_errors`` such failures are converted into failed
        :class:`WorkResult` items instead of propagating, so a retry
        round can resubmit them.
        """
        if not items:
            return [], True
        results: List[WorkResult] = []
        pool_ok = True
        futures = {
            pool.submit(
                _execute_work_item,
                build,
                seed,
                item,
                horizon,
                demands_known,
                collect_metrics,
                _item_checkpoint(sweep_dir, item, checkpoint_every),
                failures,
            ): item
            for item in items
        }
        for future in as_completed(futures):
            item = futures[future]
            if capture_pool_errors:
                try:
                    work_result = future.result()
                except Exception as exc:  # noqa: BLE001 — retried next round
                    pool_ok = False
                    work_result = WorkResult(
                        repetition=item.repetition,
                        controller_index=item.controller_index,
                        controller_name=None,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                        error_traceback=traceback.format_exc(),
                        wall_seconds=0.0,
                        cpu_seconds=0.0,
                        pid=0,
                    )
            else:
                work_result = future.result()
            if sweep_dir is not None and work_result.ok:
                persist_work_result(sweep_dir, work_result)
            results.append(work_result)
        return results, pool_ok

    # ------------------------------------------------------------------ #

    def _run_serial(
        self,
        build: ScenarioBuilder,
        seed: int,
        repetition_indices: Sequence[int],
        horizon: int,
        demands_known: bool,
        collect_metrics: bool,
        done: Set[Tuple[int, int]],
        sweep_dir: Optional[Path],
        checkpoint_every: Optional[int] = None,
        failures: Optional[FailureSchedule] = None,
    ) -> List[WorkResult]:
        """In-process execution, one world build per repetition.

        Produces the same :class:`WorkResult` stream as the pool path:
        world realisations are slot-keyed and controller streams are
        name-keyed, so sharing one build across a repetition's controllers
        is observationally identical to rebuilding per controller.  Each
        item still gets its own telemetry registry, so the per-item
        snapshots match the pool path's — but in-process the registries
        inherit the parent's trace writer (pool workers cannot: writers
        are not picklable), so a serial run yields a complete trace.
        """
        parent = obs.active_registry()
        trace = parent.trace if parent is not None else None
        results: List[WorkResult] = []
        for repetition in repetition_indices:
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            try:
                world = build_world(build, seed, repetition)
            except Exception as exc:  # noqa: BLE001
                # The whole repetition is lost; report it as one failed
                # item (the pool path reports one per controller, but the
                # controller count is unknowable when build() crashes).
                results.append(
                    WorkResult(
                        repetition=repetition,
                        controller_index=0,
                        controller_name=None,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                        error_traceback=traceback.format_exc(),
                        wall_seconds=time.perf_counter() - wall_start,
                        cpu_seconds=time.process_time() - cpu_start,
                        pid=os.getpid(),
                    )
                )
                continue
            for index in range(len(world[2])):
                if (repetition, index) in done:
                    continue
                item = WorkItem(repetition=repetition, controller_index=index)
                work_result = run_item_on_world(
                    world,
                    item,
                    horizon,
                    demands_known=demands_known,
                    collect_metrics=collect_metrics,
                    checkpoint=_item_checkpoint(
                        sweep_dir, item, checkpoint_every
                    ),
                    failures=failures,
                    trace=trace,
                )
                if sweep_dir is not None and work_result.ok:
                    persist_work_result(sweep_dir, work_result)
                results.append(work_result)
        return results

    @staticmethod
    def _probe_controller_count(build: ScenarioBuilder, seed: int) -> int:
        """Build repetition 0 once, in-parent, to size the work grid."""
        rngs = repetition_registry(seed, 0)
        _, _, controllers = build(rngs)
        if not controllers:
            raise ValueError("scenario builder returned no controllers")
        return len(controllers)


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    """Fork where available: cheap start-up and inherited ``sys.path``.

    On platforms without fork (Windows/macOS-spawn) the default context is
    used; scenario builders then additionally need to live in importable
    modules.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None
