"""Process-parallel repetition execution (the many-seed evaluation engine).

Every figure in the paper is an average over 80 independently seeded
topologies (§VI), and the serial loop in :mod:`repro.sim.multirun` was the
single biggest wall-clock cost of regenerating them.  This module fans the
``(repetition, controller)`` grid of a repetition study out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the results
**bit-identical** to the serial path:

* every repetition derives its own :class:`~repro.utils.seeding.RngRegistry`
  via ``RngRegistry(seed).child(f"rep{r}")`` — the worker rebuilds the
  repetition's world from that registry, and because all delay/demand
  realisations are slot-keyed (functions of ``(seed, slot)`` only, never of
  sampling order) a rebuilt world realises exactly the same trajectories as
  the shared serial world;
* each controller reads its own named stream from the registry, so running
  controller ``j`` alone in a worker consumes exactly the state it would
  have consumed in the serial loop.

Failure semantics: a repetition that raises is captured as a
:class:`RepetitionFailure` (message + traceback + work-item coordinates)
and excluded from aggregation instead of killing the study; the caller
logs the count.  Hard worker deaths (segfault, OOM-kill) still propagate
as :class:`concurrent.futures.process.BrokenProcessPool` — those are
infrastructure errors, not scenario errors.

The scenario builder must be picklable (a module-level function, a
``functools.partial`` of one, or an instance of a picklable callable
class) because it is shipped to worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.sim.engine import run_simulation
from repro.sim.metrics import SimulationResult
from repro.utils.seeding import RngRegistry
from repro.utils.validation import require_positive
from repro.workload.demand import DemandModel

__all__ = [
    "ScenarioBuilder",
    "WorkItem",
    "WorkResult",
    "RepetitionFailure",
    "ParallelRunner",
    "resolve_n_jobs",
    "repetition_registry",
]

# A scenario builder returns the world for one repetition.
ScenarioBuilder = Callable[
    [RngRegistry], Tuple[MECNetwork, DemandModel, List[Controller]]
]


def repetition_registry(seed: int, repetition: int) -> RngRegistry:
    """The canonical per-repetition registry: ``child(f"rep{r}")``.

    Both the serial and the parallel paths derive repetition worlds through
    this single helper, which is what makes their results bit-identical.
    """
    return RngRegistry(seed=seed).child(f"rep{repetition}")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``0`` means "all cores"; negative values count back from
    the core count joblib-style (``-1`` == all cores, ``-2`` == all but
    one); positive values are taken literally.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


@dataclass(frozen=True)
class WorkItem:
    """One cell of the repetition × controller grid."""

    repetition: int
    controller_index: int


@dataclass(frozen=True)
class RepetitionFailure:
    """A crashed work item: recorded, logged, excluded from summaries."""

    repetition: int
    controller_index: int
    controller_name: Optional[str]  # None when build() itself crashed
    error: str
    traceback: str

    def __str__(self) -> str:
        who = self.controller_name or f"controller#{self.controller_index}"
        return f"rep{self.repetition}/{who}: {self.error}"


@dataclass(frozen=True)
class WorkResult:
    """Outcome of one work item, successful or not, with timing.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict of the
    telemetry the item recorded (None when collection was off) and ``pid``
    the process that executed it — the parent groups snapshots by ``pid``
    for the per-worker breakdown.
    """

    repetition: int
    controller_index: int
    controller_name: Optional[str]
    result: Optional[SimulationResult]
    error: Optional[str]
    error_traceback: Optional[str]
    wall_seconds: float
    cpu_seconds: float
    metrics: Optional[dict] = None
    pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def failure(self) -> RepetitionFailure:
        if self.ok:
            raise ValueError("work item succeeded; no failure to report")
        return RepetitionFailure(
            repetition=self.repetition,
            controller_index=self.controller_index,
            controller_name=self.controller_name,
            error=self.error,
            traceback=self.error_traceback or "",
        )


def _execute_work_item(
    build: ScenarioBuilder,
    seed: int,
    item: WorkItem,
    horizon: int,
    demands_known: bool,
    collect_metrics: bool = False,
) -> WorkResult:
    """Rebuild the repetition's world and run one controller over it.

    Runs inside a worker process (but is equally valid in-process).  All
    exceptions are converted to a failed :class:`WorkResult` so one bad
    repetition cannot kill the study.  With ``collect_metrics`` the item
    records into a fresh :class:`repro.obs.MetricsRegistry` whose snapshot
    rides back on the :class:`WorkResult` (plain dict — picklable).
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    name: Optional[str] = None
    registry = obs.MetricsRegistry() if collect_metrics else None
    try:
        rngs = repetition_registry(seed, item.repetition)
        network, demand_model, controllers = build(rngs)
        controller = controllers[item.controller_index]
        name = controller.name
        result = run_simulation(
            network,
            demand_model,
            controller,
            horizon=horizon,
            demands_known=demands_known,
            metrics=registry,
        )
        error = None
        error_tb = None
    except Exception as exc:  # noqa: BLE001 — graceful degradation by design
        result = None
        error = f"{type(exc).__name__}: {exc}"
        error_tb = traceback.format_exc()
    return WorkResult(
        repetition=item.repetition,
        controller_index=item.controller_index,
        controller_name=name,
        result=result,
        error=error,
        error_traceback=error_tb,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
        metrics=registry.snapshot() if registry is not None else None,
        pid=os.getpid(),
    )


class ParallelRunner:
    """Fan a repetition study's work items over a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` executes in-process (no pool, no pickling
        requirement on the builder); ``None``/``0`` uses every core;
        negative counts back from the core count.  See
        :func:`resolve_n_jobs`.

    The runner is stateless across :meth:`run` calls and safe to reuse.
    """

    def __init__(self, n_jobs: Optional[int] = 1):
        self.n_jobs = resolve_n_jobs(n_jobs)

    # ------------------------------------------------------------------ #

    def run(
        self,
        build: ScenarioBuilder,
        seed: int,
        repetitions: int,
        horizon: int,
        demands_known: bool = True,
        n_controllers: Optional[int] = None,
        collect_metrics: Optional[bool] = None,
    ) -> List[WorkResult]:
        """Execute the full repetition × controller grid.

        Returns one :class:`WorkResult` per work item, sorted by
        ``(repetition, controller_index)`` — the serial iteration order —
        regardless of completion order.  ``n_controllers`` skips the probe
        build when the caller already knows the controller count (building
        a scenario can be expensive, e.g. GAN pretraining).

        ``collect_metrics`` attaches a per-item telemetry snapshot to every
        :class:`WorkResult` (see :mod:`repro.obs`).  The default ``None``
        auto-enables collection when a registry is active in the calling
        process (e.g. the CLI's ``--metrics-out``); item snapshots are then
        also merged into that registry, so parent-side telemetry works the
        same for serial and pooled execution.
        """
        require_positive("repetitions", repetitions)
        require_positive("horizon", horizon)
        parent_registry = obs.active_registry()
        if collect_metrics is None:
            collect_metrics = parent_registry is not None
        if self.n_jobs == 1:
            results = self._run_serial(
                build, seed, repetitions, horizon, demands_known, collect_metrics
            )
        else:
            results = self._run_pool(
                build,
                seed,
                repetitions,
                horizon,
                demands_known,
                n_controllers,
                collect_metrics,
            )
        if parent_registry is not None and collect_metrics:
            for item in results:
                if item.metrics is not None:
                    parent_registry.merge(
                        obs.MetricsRegistry.from_snapshot(item.metrics)
                    )
        return results

    def _run_pool(
        self,
        build: ScenarioBuilder,
        seed: int,
        repetitions: int,
        horizon: int,
        demands_known: bool,
        n_controllers: Optional[int],
        collect_metrics: bool,
    ) -> List[WorkResult]:
        if n_controllers is None:
            n_controllers = self._probe_controller_count(build, seed)
        require_positive("n_controllers", n_controllers)
        items = [
            WorkItem(repetition=r, controller_index=c)
            for r in range(repetitions)
            for c in range(n_controllers)
        ]
        results: List[WorkResult] = []
        workers = min(self.n_jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_preferred_context()
        ) as pool:
            futures = [
                pool.submit(
                    _execute_work_item,
                    build,
                    seed,
                    item,
                    horizon,
                    demands_known,
                    collect_metrics,
                )
                for item in items
            ]
            for future in as_completed(futures):
                results.append(future.result())
        results.sort(key=lambda r: (r.repetition, r.controller_index))
        return results

    # ------------------------------------------------------------------ #

    def _run_serial(
        self,
        build: ScenarioBuilder,
        seed: int,
        repetitions: int,
        horizon: int,
        demands_known: bool,
        collect_metrics: bool,
    ) -> List[WorkResult]:
        """In-process execution, one world build per repetition.

        Produces the same :class:`WorkResult` stream as the pool path:
        world realisations are slot-keyed and controller streams are
        name-keyed, so sharing one build across a repetition's controllers
        is observationally identical to rebuilding per controller.  Each
        item still gets its own telemetry registry, so the per-item
        snapshots match the pool path's — but in-process the registries
        inherit the parent's trace writer (pool workers cannot: writers
        are not picklable), so a serial run yields a complete trace.
        """
        parent = obs.active_registry()
        trace = parent.trace if parent is not None else None
        results: List[WorkResult] = []
        for repetition in range(repetitions):
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            try:
                rngs = repetition_registry(seed, repetition)
                network, demand_model, controllers = build(rngs)
            except Exception as exc:  # noqa: BLE001
                # The whole repetition is lost; report it as one failed
                # item (the pool path reports one per controller, but the
                # controller count is unknowable when build() crashes).
                results.append(
                    WorkResult(
                        repetition=repetition,
                        controller_index=0,
                        controller_name=None,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                        error_traceback=traceback.format_exc(),
                        wall_seconds=time.perf_counter() - wall_start,
                        cpu_seconds=time.process_time() - cpu_start,
                        pid=os.getpid(),
                    )
                )
                continue
            for index, controller in enumerate(controllers):
                wall_start = time.perf_counter()
                cpu_start = time.process_time()
                registry = (
                    obs.MetricsRegistry(trace=trace) if collect_metrics else None
                )
                try:
                    result = run_simulation(
                        network,
                        demand_model,
                        controller,
                        horizon=horizon,
                        demands_known=demands_known,
                        metrics=registry,
                    )
                    error = None
                    error_tb = None
                except Exception as exc:  # noqa: BLE001
                    result = None
                    error = f"{type(exc).__name__}: {exc}"
                    error_tb = traceback.format_exc()
                results.append(
                    WorkResult(
                        repetition=repetition,
                        controller_index=index,
                        controller_name=controller.name,
                        result=result,
                        error=error,
                        error_traceback=error_tb,
                        wall_seconds=time.perf_counter() - wall_start,
                        cpu_seconds=time.process_time() - cpu_start,
                        metrics=registry.snapshot() if registry is not None else None,
                        pid=os.getpid(),
                    )
                )
        return results

    @staticmethod
    def _probe_controller_count(build: ScenarioBuilder, seed: int) -> int:
        """Build repetition 0 once, in-parent, to size the work grid."""
        rngs = repetition_registry(seed, 0)
        _, _, controllers = build(rngs)
        if not controllers:
            raise ValueError("scenario builder returned no controllers")
        return len(controllers)


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    """Fork where available: cheap start-up and inherited ``sys.path``.

    On platforms without fork (Windows/macOS-spawn) the default context is
    used; scenario builders then additionally need to live in importable
    modules.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None
