"""The time-slot simulation loop.

One slot of :func:`run_simulation`:

1. the demand model realises `rho_l(t)` (Eq. 1);
2. the controller decides (timed — this is the running-time series of the
   paper's (b) sub-figures), seeing the true demands only in the
   given-demands setting;
3. the delay process realises `d_i(t)` and the assignment's cost is
   evaluated (extended Eq. 3, see :mod:`repro.core.assignment`);
4. optionally, the clairvoyant optimum of the slot is computed for regret;
5. the controller observes the realised demands and the delays of the
   stations it played.

The :class:`~repro.utils.timer.Stopwatch` laps remain the *public* timing
series (the figures' runtime panels); each phase is additionally wrapped
in a :mod:`repro.obs` span (``sim.decide``, ``sim.evaluate``,
``sim.optimal``, ``sim.observe``) so an activated registry — or the
``metrics`` argument — sees the per-slot decomposition.  With telemetry
off (the default) the spans are shared no-ops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.core.assignment import Assignment, evaluate_assignment
from repro.core.controller import Controller
from repro.core.optimal import clairvoyant_cost, clairvoyant_cost_exact
from repro.mec.network import MECNetwork
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.utils.timer import Stopwatch
from repro.utils.validation import require_positive
from repro.workload.demand import DemandModel

__all__ = ["run_simulation"]


def run_simulation(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    demands_known: bool = True,
    compute_optimal: bool = False,
    exact_optimal: bool = False,
    metrics: Optional["obs.MetricsRegistry"] = None,
) -> SimulationResult:
    """Run ``controller`` for ``horizon`` slots; returns the metric series.

    ``demands_known`` selects the §IV setting (true demands passed to the
    controller) versus the §V setting (controller predicts internally).
    ``compute_optimal`` additionally solves the slot's clairvoyant LP
    (``exact_optimal`` upgrades it to the exact ILP — small instances
    only); the optimum lands in each record for regret tracking.
    ``metrics`` activates the given :class:`repro.obs.MetricsRegistry` for
    the duration of the run; when omitted, whatever registry is already
    active (e.g. installed by the CLI) keeps receiving the spans.
    """
    require_positive("horizon", horizon)
    if demand_model.n_requests != controller.n_requests:
        raise ValueError(
            f"demand model covers {demand_model.n_requests} requests, "
            f"controller expects {controller.n_requests}"
        )
    with obs.activate(metrics) if metrics is not None else _KEEP_ACTIVE:
        return _run_loop(
            network,
            demand_model,
            controller,
            horizon,
            demands_known,
            compute_optimal,
            exact_optimal,
        )


class _KeepActive:
    """No-op stand-in for ``obs.activate`` when no registry is passed."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_KEEP_ACTIVE = _KeepActive()


def _run_loop(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    demands_known: bool,
    compute_optimal: bool,
    exact_optimal: bool,
) -> SimulationResult:
    requests = controller.requests
    result = SimulationResult(controller_name=controller.name)
    previous: Optional[Assignment] = None
    decide_watch = Stopwatch()
    observe_watch = Stopwatch()
    obs.set_context(controller=controller.name)

    for slot in range(horizon):
        obs.set_context(slot=slot)
        true_demands = demand_model.demand_at(slot)

        with decide_watch, obs.span("sim.decide"):
            assignment = controller.decide(
                slot, true_demands if demands_known else None
            )

        with obs.span("sim.evaluate"):
            unit_delays = network.delays.sample(slot)
            delay_ms = evaluate_assignment(
                assignment, network, requests, true_demands, unit_delays
            )

        optimal_ms: Optional[float] = None
        if compute_optimal:
            with obs.span("sim.optimal"):
                if exact_optimal:
                    optimal_ms = clairvoyant_cost_exact(
                        network, requests, true_demands, unit_delays
                    )
                else:
                    optimal_ms = clairvoyant_cost(
                        network, requests, true_demands, unit_delays
                    )

        prediction_mae: Optional[float] = None
        last_prediction = getattr(controller, "last_prediction", None)
        if not demands_known and last_prediction is not None:
            prediction_mae = float(np.mean(np.abs(last_prediction - true_demands)))

        with observe_watch, obs.span("sim.observe"):
            controller.observe(slot, true_demands, unit_delays, assignment)

        loads = assignment.loads_mhz(
            true_demands, network.c_unit_mhz, network.n_stations
        )
        # Churn is change *between* slots; slot 0's cold-start placement is
        # accounted separately so total_churn no longer absorbs it.
        churn = assignment.cache_churn(previous) if previous is not None else 0
        initial = len(assignment.cached) if previous is None else 0
        obs.inc("sim.slots")
        result.append(
            SlotRecord(
                slot=slot,
                average_delay_ms=delay_ms,
                decision_seconds=decide_watch.laps[-1],
                observe_seconds=observe_watch.laps[-1],
                cache_churn=churn,
                n_cached_instances=len(assignment.cached),
                max_load_fraction=float(
                    np.max(loads / network.capacities_mhz)
                ),
                optimal_delay_ms=optimal_ms,
                prediction_mae_mb=prediction_mae,
                initial_instantiations=initial,
            )
        )
        previous = assignment
    obs.set_context(slot=None, controller=None)
    return result
