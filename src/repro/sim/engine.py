"""The time-slot simulation loop.

One slot of :func:`run_simulation`:

1. the demand model realises `rho_l(t)` (Eq. 1);
2. the controller decides (timed — this is the running-time series of the
   paper's (b) sub-figures), seeing the true demands only in the
   given-demands setting;
3. the delay process realises `d_i(t)` and the assignment's cost is
   evaluated (extended Eq. 3, see :mod:`repro.core.assignment`);
4. optionally, the clairvoyant optimum of the slot is computed for regret;
5. the controller observes the realised demands and the delays of the
   stations it played.

The :class:`~repro.utils.timer.Stopwatch` laps remain the *public* timing
series (the figures' runtime panels); each phase is additionally wrapped
in a :mod:`repro.obs` span (``sim.decide``, ``sim.evaluate``,
``sim.optimal``, ``sim.observe``) so an activated registry — or the
``metrics`` argument — sees the per-slot decomposition.  With telemetry
off (the default) the spans are shared no-ops.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np
from numpy.typing import DTypeLike

from repro import obs
from repro.core.assignment import Assignment, SlotEvaluator
from repro.core.controller import Controller
from repro.core.optimal import clairvoyant_cost, clairvoyant_cost_exact
from repro.mec.network import MECNetwork
from repro.sim.config import UNSET, RunConfig, resolve_run_config
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.state import (
    SIMULATION_KIND,
    CheckpointConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.timer import Stopwatch
from repro.utils.validation import require_positive
from repro.workload.demand import DemandModel

if TYPE_CHECKING:  # imported lazily at runtime: failures.py imports us
    from repro.sim.failures import FailureSchedule

__all__ = ["run_simulation"]

#: Floor left on a fully-failed station so utilisation ratios stay finite;
#: no request fits in it.
_OUTAGE_EPSILON_MHZ = 1e-6


def run_simulation(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    *,
    demands_known: bool = True,
    compute_optimal: bool = False,
    exact_optimal: bool = False,
    metrics: Optional["obs.MetricsRegistry"] = None,
    config: Optional[RunConfig] = None,
    checkpoint: object = UNSET,
    failures: Optional["FailureSchedule"] = None,
    dtype: DTypeLike = np.float64,
) -> SimulationResult:
    """Run ``controller`` for ``horizon`` slots; returns the metric series.

    ``demands_known`` selects the §IV setting (true demands passed to the
    controller) versus the §V setting (controller predicts internally).
    ``compute_optimal`` additionally solves the slot's clairvoyant LP
    (``exact_optimal`` upgrades it to the exact ILP — small instances
    only); the optimum lands in each record for regret tracking.
    ``metrics`` activates the given :class:`repro.obs.MetricsRegistry` for
    the duration of the run; when omitted, whatever registry is already
    active (e.g. installed by the CLI) keeps receiving the spans.

    ``config`` (a :class:`repro.sim.RunConfig`) carries the execution
    knobs this entry point reads: ``checkpoint_dir`` /
    ``checkpoint_every`` / ``resume`` enable crash-tolerant snapshots —
    the run writes a snapshot of the controller, demand-model identity
    and record series every ``checkpoint_every`` completed slots, and
    with ``resume=True`` restores an existing snapshot and continues
    from the next slot.  A resumed run over a same-seeded world
    reproduces the uninterrupted run's series bit-identically (timing
    columns excepted — wall-clock is re-measured).  The snapshot does
    not pin the horizon, so a run can resume into a longer horizon than
    it was interrupted at.  The legacy
    ``checkpoint=CheckpointConfig(...)`` keyword still works but raises
    a :class:`DeprecationWarning`.

    ``failures`` applies a :class:`repro.sim.failures.FailureSchedule`
    around each slot: scheduled capacity factors are written to the live
    station objects before the controller decides (so its LP/packing sees
    the outage) and the original capacities are restored when the run
    ends, even on error.  A full outage leaves an epsilon capacity so
    utilisation ratios stay finite.

    ``dtype`` selects the working precision of the slot evaluator's
    cached arrays (see :class:`repro.core.assignment.SlotEvaluator`);
    ``"float32"`` halves evaluation memory traffic on 10^5-request runs,
    while the default float64 keeps the documented bit-identical
    semantics.
    """
    require_positive("horizon", horizon)
    if demand_model.n_requests != controller.n_requests:
        raise ValueError(
            f"demand model covers {demand_model.n_requests} requests, "
            f"controller expects {controller.n_requests}"
        )
    run_config = resolve_run_config(
        "run_simulation", config, {"checkpoint": checkpoint}
    )
    with obs.activate(metrics) if metrics is not None else _KEEP_ACTIVE:
        return _run_loop(
            network,
            demand_model,
            controller,
            horizon,
            demands_known,
            compute_optimal,
            exact_optimal,
            run_config.to_checkpoint_config(),
            failures,
            dtype,
        )


class _KeepActive:
    """No-op stand-in for ``obs.activate`` when no registry is passed."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_KEEP_ACTIVE = _KeepActive()


def _write_snapshot(
    path: Path,
    controller: Controller,
    demand_model: DemandModel,
    result: SimulationResult,
    previous: Assignment,
    demands_known: bool,
) -> None:
    """Snapshot everything a resumed run needs to continue bit-identically.

    The previous slot's station assignment travels too: churn is measured
    *between* slots, so the first resumed slot needs the last executed
    assignment to keep the churn series identical.
    """
    state = {
        "controller_name": controller.name,
        "controller": controller.state_dict(),
        "demand_model": demand_model.state_dict(),
        "result": result.state_dict(),
        "previous_stations": np.asarray(previous.station_of, dtype=int),
    }
    with obs.span("state.save"):
        save_checkpoint(
            path,
            state,
            kind=SIMULATION_KIND,
            meta={
                "controller": controller.name,
                "slots": result.horizon,
                "demands_known": demands_known,
            },
        )
    obs.inc("state.save")


def _restore_snapshot(
    path: Path,
    controller: Controller,
    demand_model: DemandModel,
    horizon: int,
) -> Tuple[SimulationResult, Assignment]:
    """Load a snapshot back into ``controller`` and rebuild the series."""
    with obs.span("state.load"):
        state, _meta = load_checkpoint(path, kind=SIMULATION_KIND)
    if state["controller_name"] != controller.name:
        raise CheckpointError(
            f"{path} holds a {state['controller_name']!r} run, "
            f"this controller is {controller.name!r}"
        )
    # Verifies the resumed world realises the same demand trajectory.
    demand_model.load_state_dict(state["demand_model"])
    result = SimulationResult.from_state(state["result"])
    if result.horizon >= horizon:
        raise CheckpointError(
            f"{path} already covers {result.horizon} slots; resuming needs "
            f"a horizon beyond that, got {horizon}"
        )
    controller.load_state_dict(state["controller"])
    previous = Assignment.from_stations(
        np.asarray(state["previous_stations"], dtype=int), controller.requests
    )
    obs.inc("state.load")
    return result, previous


def _run_loop(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    demands_known: bool,
    compute_optimal: bool,
    exact_optimal: bool,
    checkpoint: Optional[CheckpointConfig],
    failures: Optional["FailureSchedule"],
    dtype: DTypeLike,
) -> SimulationResult:
    requests = controller.requests
    result = SimulationResult(controller_name=controller.name)
    previous: Optional[Assignment] = None
    snapshot_path = (
        checkpoint.path_for(controller.name) if checkpoint is not None else None
    )
    if (
        checkpoint is not None
        and checkpoint.resume
        and snapshot_path is not None
        and snapshot_path.exists()
    ):
        result, previous = _restore_snapshot(
            snapshot_path, controller, demand_model, horizon
        )
    decide_watch = Stopwatch()
    observe_watch = Stopwatch()
    evaluator = SlotEvaluator(network, requests, dtype=dtype)
    original_capacities = (
        [bs.capacity_mhz for bs in network.stations]
        if failures is not None
        else None
    )
    applied_factors: Optional[np.ndarray] = None
    obs.set_context(controller=controller.name)

    try:
        for slot in range(result.horizon, horizon):
            obs.set_context(slot=slot)
            if failures is not None and original_capacities is not None:
                factors = failures.capacity_factors(network.n_stations, slot)
                # Most slots have no outage transition; only touch the live
                # station objects (and the evaluator's capacity cache) when
                # the factor vector actually changes.
                if applied_factors is None or not np.array_equal(
                    factors, applied_factors
                ):
                    for index, bs in enumerate(network.stations):
                        bs.capacity_mhz = max(
                            original_capacities[index] * float(factors[index]),
                            _OUTAGE_EPSILON_MHZ,
                        )
                    evaluator.refresh_capacities()
                    applied_factors = factors
            true_demands = demand_model.demand_at(slot)

            with decide_watch, obs.span("sim.decide"):
                assignment = controller.decide(
                    slot, true_demands if demands_known else None
                )

            with obs.span("sim.evaluate"):
                unit_delays = network.delays.sample(slot)
                delay_ms = evaluator.evaluate(
                    assignment, true_demands, unit_delays
                )

            optimal_ms: Optional[float] = None
            if compute_optimal:
                with obs.span("sim.optimal"):
                    if exact_optimal:
                        optimal_ms = clairvoyant_cost_exact(
                            network, requests, true_demands, unit_delays
                        )
                    else:
                        optimal_ms = clairvoyant_cost(
                            network, requests, true_demands, unit_delays
                        )

            prediction_mae: Optional[float] = None
            last_prediction = getattr(controller, "last_prediction", None)
            if not demands_known and last_prediction is not None:
                prediction_mae = float(
                    np.mean(np.abs(last_prediction - true_demands))
                )

            with observe_watch, obs.span("sim.observe"):
                controller.observe(slot, true_demands, unit_delays, assignment)

            loads = evaluator.loads_mhz(assignment, true_demands)
            # Churn is change *between* slots; slot 0's cold-start placement
            # is accounted separately so total_churn no longer absorbs it.
            churn = assignment.cache_churn(previous) if previous is not None else 0
            initial = len(assignment.cached) if previous is None else 0
            obs.inc("sim.slots")
            result.append(
                SlotRecord(
                    slot=slot,
                    average_delay_ms=delay_ms,
                    decision_seconds=decide_watch.laps[-1],
                    observe_seconds=observe_watch.laps[-1],
                    cache_churn=churn,
                    n_cached_instances=len(assignment.cached),
                    max_load_fraction=float(
                        np.max(loads / evaluator.capacities_mhz)
                    ),
                    optimal_delay_ms=optimal_ms,
                    prediction_mae_mb=prediction_mae,
                    initial_instantiations=initial,
                )
            )
            previous = assignment
            if (
                checkpoint is not None
                and snapshot_path is not None
                and checkpoint.due(result.horizon)
            ):
                _write_snapshot(
                    snapshot_path, controller, demand_model, result, previous,
                    demands_known,
                )
    finally:
        if failures is not None and original_capacities is not None:
            for index, bs in enumerate(network.stations):
                bs.capacity_mhz = original_capacities[index]
    obs.set_context(slot=None, controller=None)
    return result
