"""The time-slot simulation loop.

One slot of :func:`run_simulation`:

1. the demand model realises `rho_l(t)` (Eq. 1);
2. the controller decides (timed — this is the running-time series of the
   paper's (b) sub-figures), seeing the true demands only in the
   given-demands setting;
3. the delay process realises `d_i(t)` and the assignment's cost is
   evaluated (extended Eq. 3, see :mod:`repro.core.assignment`);
4. optionally, the clairvoyant optimum of the slot is computed for regret;
5. the controller observes the realised demands and the delays of the
   stations it played.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.assignment import Assignment, evaluate_assignment
from repro.core.controller import Controller
from repro.core.optimal import clairvoyant_cost, clairvoyant_cost_exact
from repro.mec.network import MECNetwork
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.utils.timer import Stopwatch
from repro.utils.validation import require_positive
from repro.workload.demand import DemandModel

__all__ = ["run_simulation"]


def run_simulation(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    demands_known: bool = True,
    compute_optimal: bool = False,
    exact_optimal: bool = False,
) -> SimulationResult:
    """Run ``controller`` for ``horizon`` slots; returns the metric series.

    ``demands_known`` selects the §IV setting (true demands passed to the
    controller) versus the §V setting (controller predicts internally).
    ``compute_optimal`` additionally solves the slot's clairvoyant LP
    (``exact_optimal`` upgrades it to the exact ILP — small instances
    only); the optimum lands in each record for regret tracking.
    """
    require_positive("horizon", horizon)
    if demand_model.n_requests != controller.n_requests:
        raise ValueError(
            f"demand model covers {demand_model.n_requests} requests, "
            f"controller expects {controller.n_requests}"
        )
    requests = controller.requests
    result = SimulationResult(controller_name=controller.name)
    previous: Optional[Assignment] = None
    decide_watch = Stopwatch()
    observe_watch = Stopwatch()

    for slot in range(horizon):
        true_demands = demand_model.demand_at(slot)

        with decide_watch:
            assignment = controller.decide(
                slot, true_demands if demands_known else None
            )

        unit_delays = network.delays.sample(slot)
        delay_ms = evaluate_assignment(
            assignment, network, requests, true_demands, unit_delays
        )

        optimal_ms: Optional[float] = None
        if compute_optimal:
            if exact_optimal:
                optimal_ms = clairvoyant_cost_exact(
                    network, requests, true_demands, unit_delays
                )
            else:
                optimal_ms = clairvoyant_cost(
                    network, requests, true_demands, unit_delays
                )

        prediction_mae: Optional[float] = None
        last_prediction = getattr(controller, "last_prediction", None)
        if not demands_known and last_prediction is not None:
            prediction_mae = float(np.mean(np.abs(last_prediction - true_demands)))

        with observe_watch:
            controller.observe(slot, true_demands, unit_delays, assignment)

        loads = assignment.loads_mhz(
            true_demands, network.c_unit_mhz, network.n_stations
        )
        churn = assignment.cache_churn(previous) if previous is not None else len(
            assignment.cached
        )
        result.append(
            SlotRecord(
                slot=slot,
                average_delay_ms=delay_ms,
                decision_seconds=decide_watch.laps[-1],
                observe_seconds=observe_watch.laps[-1],
                cache_churn=churn,
                n_cached_instances=len(assignment.cached),
                max_load_fraction=float(
                    np.max(loads / network.capacities_mhz)
                ),
                optimal_delay_ms=optimal_ms,
                prediction_mae_mb=prediction_mae,
            )
        )
        previous = assignment
    return result
