"""Scripted failure injection: station outages and capacity degradation.

Real MECs lose cloudlets (power, maintenance, backhaul cuts).  A
:class:`FailureSchedule` declares windows during which a station's
capacity is reduced (to zero for a full outage); :func:`run_with_failures`
drives a controller through the horizon applying and reverting the
failures around each slot, so controllers are exercised against the
topology *changing under them* — the robustness companion to the delay
drift and demand bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.assignment import evaluate_assignment
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.utils.timer import Stopwatch
from repro.utils.validation import require_non_negative, require_positive
from repro.workload.demand import DemandModel

__all__ = ["FailureSchedule", "run_with_failures"]


@dataclass(frozen=True)
class _Outage:
    station: int
    start: int
    end: int  # exclusive
    remaining_fraction: float  # 0.0 == full outage


class FailureSchedule:
    """Capacity-degradation windows per station."""

    def __init__(self) -> None:
        self._outages: List[_Outage] = []

    def add_outage(
        self,
        station: int,
        start: int,
        duration: int,
        remaining_fraction: float = 0.0,
    ) -> "FailureSchedule":
        """Degrade ``station`` to ``remaining_fraction`` of its capacity
        for ``duration`` slots from ``start``; returns self for chaining."""
        require_non_negative("station", station)
        require_non_negative("start", start)
        require_positive("duration", duration)
        if not 0.0 <= remaining_fraction < 1.0:
            raise ValueError(
                f"remaining_fraction must be in [0, 1), got {remaining_fraction}"
            )
        self._outages.append(
            _Outage(
                station=int(station),
                start=int(start),
                end=int(start + duration),
                remaining_fraction=float(remaining_fraction),
            )
        )
        return self

    @property
    def n_outages(self) -> int:
        return len(self._outages)

    def capacity_factor(self, station: int, slot: int) -> float:
        """The station's remaining capacity fraction in ``slot``.

        Overlapping windows compound by taking the *most severe* one.
        """
        factor = 1.0
        for outage in self._outages:
            if outage.station == station and outage.start <= slot < outage.end:
                factor = min(factor, outage.remaining_fraction)
        return factor

    def affected_stations(self, slot: int) -> List[int]:
        """Stations degraded in ``slot``."""
        return sorted(
            {
                o.station
                for o in self._outages
                if o.start <= slot < o.end
            }
        )


def run_with_failures(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    failures: FailureSchedule,
    demands_known: bool = True,
) -> SimulationResult:
    """Like :func:`repro.sim.run_simulation`, with per-slot failures applied.

    Before each slot the scheduled capacity factors are applied to the
    live station objects (so the controller's LP/packing sees the outage);
    the original capacities are always restored afterwards, even on error.
    A full outage (factor 0) leaves a tiny epsilon capacity so division-
    based utilisation metrics stay finite; no request fits in it.
    """
    require_positive("horizon", horizon)
    if demand_model.n_requests != controller.n_requests:
        raise ValueError(
            f"demand model covers {demand_model.n_requests} requests, "
            f"controller expects {controller.n_requests}"
        )
    original = [bs.capacity_mhz for bs in network.stations]
    requests = controller.requests
    result = SimulationResult(controller_name=controller.name)
    previous = None
    decide_watch, observe_watch = Stopwatch(), Stopwatch()
    epsilon = 1e-6

    try:
        for slot in range(horizon):
            for index, bs in enumerate(network.stations):
                factor = failures.capacity_factor(index, slot)
                bs.capacity_mhz = max(original[index] * factor, epsilon)

            true_demands = demand_model.demand_at(slot)
            with decide_watch:
                assignment = controller.decide(
                    slot, true_demands if demands_known else None
                )
            unit_delays = network.delays.sample(slot)
            delay_ms = evaluate_assignment(
                assignment, network, requests, true_demands, unit_delays
            )
            with observe_watch:
                controller.observe(slot, true_demands, unit_delays, assignment)

            loads = assignment.loads_mhz(
                true_demands, network.c_unit_mhz, network.n_stations
            )
            # Same churn accounting as repro.sim.engine: slot 0's cold-start
            # placement is initial_instantiations, not churn.
            churn = assignment.cache_churn(previous) if previous is not None else 0
            initial = len(assignment.cached) if previous is None else 0
            result.append(
                SlotRecord(
                    slot=slot,
                    average_delay_ms=delay_ms,
                    decision_seconds=decide_watch.laps[-1],
                    observe_seconds=observe_watch.laps[-1],
                    cache_churn=churn,
                    n_cached_instances=len(assignment.cached),
                    max_load_fraction=float(
                        np.max(loads / network.capacities_mhz)
                    ),
                    initial_instantiations=initial,
                )
            )
            previous = assignment
    finally:
        for index, bs in enumerate(network.stations):
            bs.capacity_mhz = original[index]
    return result
