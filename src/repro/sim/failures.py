"""Scripted failure injection: station outages and capacity degradation.

Real MECs lose cloudlets (power, maintenance, backhaul cuts).  A
:class:`FailureSchedule` declares windows during which a station's
capacity is reduced (to zero for a full outage); :func:`run_with_failures`
drives a controller through the horizon applying and reverting the
failures around each slot, so controllers are exercised against the
topology *changing under them* — the robustness companion to the delay
drift and demand bursts.

:func:`run_with_failures` is a thin front over
:func:`repro.sim.run_simulation` with its ``failures`` argument — one
loop, one set of semantics — so failure runs get the same observability
spans, clairvoyant comparator, prediction-error tracking and
checkpoint/resume support as ordinary runs (the standalone loop this
module used to carry had silently drifted behind on all four).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from numpy.typing import DTypeLike

from repro import obs
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.sim.config import UNSET, RunConfig, resolve_run_config
from repro.sim.engine import run_simulation
from repro.sim.metrics import SimulationResult
from repro.utils.validation import require_non_negative, require_positive
from repro.workload.demand import DemandModel

__all__ = ["FailureSchedule", "run_with_failures"]


@dataclass(frozen=True)
class _Outage:
    station: int
    start: int
    end: int  # exclusive
    remaining_fraction: float  # 0.0 == full outage


class FailureSchedule:
    """Capacity-degradation windows per station."""

    def __init__(self) -> None:
        self._outages: List[_Outage] = []

    def add_outage(
        self,
        station: int,
        start: int,
        duration: int,
        remaining_fraction: float = 0.0,
    ) -> "FailureSchedule":
        """Degrade ``station`` to ``remaining_fraction`` of its capacity
        for ``duration`` slots from ``start``; returns self for chaining."""
        require_non_negative("station", station)
        require_non_negative("start", start)
        require_positive("duration", duration)
        if not 0.0 <= remaining_fraction < 1.0:
            raise ValueError(
                f"remaining_fraction must be in [0, 1), got {remaining_fraction}"
            )
        self._outages.append(
            _Outage(
                station=int(station),
                start=int(start),
                end=int(start + duration),
                remaining_fraction=float(remaining_fraction),
            )
        )
        return self

    @property
    def n_outages(self) -> int:
        return len(self._outages)

    def capacity_factor(self, station: int, slot: int) -> float:
        """The station's remaining capacity fraction in ``slot``.

        Overlapping windows compound by taking the *most severe* one.
        """
        factor = 1.0
        for outage in self._outages:
            if outage.station == station and outage.start <= slot < outage.end:
                factor = min(factor, outage.remaining_fraction)
        return factor

    def affected_stations(self, slot: int) -> List[int]:
        """Stations degraded in ``slot``."""
        return sorted(
            {
                o.station
                for o in self._outages
                if o.start <= slot < o.end
            }
        )

    def capacity_factors(self, n_stations: int, slot: int) -> np.ndarray:
        """Remaining capacity fraction per station in ``slot``.

        The vectorised counterpart of :meth:`capacity_factor`: one float
        vector per slot for the simulation loop, same most-severe-window
        semantics.
        """
        factors = np.ones(n_stations)
        for outage in self._outages:
            if outage.start <= slot < outage.end and outage.station < n_stations:
                factors[outage.station] = min(
                    factors[outage.station], outage.remaining_fraction
                )
        return factors


def run_with_failures(
    network: MECNetwork,
    demand_model: DemandModel,
    controller: Controller,
    horizon: int,
    failures: FailureSchedule,
    *,
    demands_known: bool = True,
    compute_optimal: bool = False,
    exact_optimal: bool = False,
    metrics: Optional["obs.MetricsRegistry"] = None,
    config: Optional[RunConfig] = None,
    checkpoint: object = UNSET,
    dtype: DTypeLike = np.float64,
) -> SimulationResult:
    """Like :func:`repro.sim.run_simulation`, with per-slot failures applied.

    Before each slot the scheduled capacity factors are applied to the
    live station objects (so the controller's LP/packing sees the outage);
    the original capacities are always restored afterwards, even on error.
    A full outage (factor 0) leaves a tiny epsilon capacity so division-
    based utilisation metrics stay finite; no request fits in it.

    Delegates to the shared :func:`repro.sim.run_simulation` loop, so
    every engine feature — obs spans, ``compute_optimal``, prediction-MAE
    tracking, checkpoint/resume via ``config``, the ``dtype`` knob —
    works under failures too.  The legacy
    ``checkpoint=CheckpointConfig(...)`` keyword is a deprecated alias
    for ``config=RunConfig(checkpoint_dir=..., ...)``.
    """
    return run_simulation(
        network,
        demand_model,
        controller,
        horizon,
        demands_known=demands_known,
        compute_optimal=compute_optimal,
        exact_optimal=exact_optimal,
        metrics=metrics,
        config=resolve_run_config(
            "run_with_failures", config, {"checkpoint": checkpoint}
        ),
        failures=failures,
        dtype=dtype,
    )
