"""Command-line interface: regenerate figures and synthesise traces.

Usage::

    python -m repro list
    python -m repro figure fig3 [--profile quick|full] [--out DIR] [--json]
    python -m repro report [--profile quick|full] [--only fig3 fig6] [--out FILE]
    python -m repro trace --hotspots 20 --users 100 --out DIR [--seed N]
    python -m repro campaign run SPEC.toml --out DIR [--jobs N] [--resume]
    python -m repro campaign status DIR
    python -m repro campaign report DIR [--metric NAME]
    python -m repro serve [--controller OL_GD] [--port 0] [--stdio]

``figure`` renders the chosen experiment to stdout as a text table and
optionally exports CSV/JSON; ``trace`` writes a synthetic NYC-Wi-Fi-like
dataset (hotspots.csv / users.csv) for use with
:func:`repro.workload.WifiTrace.from_csv`; ``campaign`` executes,
inspects and aggregates declarative TOML experiment campaigns
(:mod:`repro.campaigns`); ``serve`` runs a controller as a long-running
slot-clocked decision service (:mod:`repro.serve`).

Flag spellings are shared across subcommands: ``--seed`` (world seed),
``--jobs`` (worker/connection parallelism), ``--checkpoint-dir`` /
``--checkpoint-every`` / ``--resume`` (persistence), ``--metrics-out`` /
``--trace`` (telemetry) mean the same thing wherever they appear.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.experiments import (
    FULL_PROFILE,
    QUICK_PROFILE,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.export import figure_to_csv, figure_to_json
from repro.experiments.plots import render_figure_plots
from repro.experiments.tables import render_figure
from repro.utils.seeding import RngRegistry
from repro.workload import synthesize_nyc_wifi_trace

__all__ = ["main", "build_parser"]

FIGURES: Dict[str, Callable] = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
}

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Learning for Exception' (ICDCS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figure experiments")

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("figure_id", choices=sorted(FIGURES))
    figure_parser.add_argument(
        "--profile", choices=sorted(_PROFILES), default="quick",
        help="experiment scale (default: quick)",
    )
    figure_parser.add_argument(
        "--out", type=Path, default=None,
        help="directory for CSV export (one file per panel)",
    )
    figure_parser.add_argument(
        "--json", action="store_true",
        help="also write <figure_id>.json into --out (requires --out)",
    )
    figure_parser.add_argument(
        "--plot", action="store_true",
        help="render Unicode sparklines instead of the numeric table",
    )
    figure_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the repetition fan-out "
             "(default: profile setting; 0 = all cores; results are "
             "bit-identical for any worker count)",
    )
    figure_parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="world seed override (default: profile setting)",
    )
    _add_checkpoint_arguments(figure_parser)
    _add_telemetry_arguments(figure_parser)

    report_parser = sub.add_parser(
        "report", help="run every figure and write the claims scorecard"
    )
    report_parser.add_argument(
        "--profile", choices=sorted(_PROFILES), default="quick"
    )
    report_parser.add_argument(
        "--only", nargs="+", choices=sorted(FIGURES), default=None,
        help="restrict to a subset of figures",
    )
    report_parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown report here (default: stdout only)",
    )
    report_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the repetition fan-out "
             "(default: profile setting; 0 = all cores)",
    )
    report_parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="world seed override (default: profile setting)",
    )
    _add_checkpoint_arguments(report_parser)
    _add_telemetry_arguments(report_parser)

    trace_parser = sub.add_parser("trace", help="synthesise a Wi-Fi trace")
    trace_parser.add_argument("--hotspots", type=int, default=20)
    trace_parser.add_argument("--users", type=int, default=100)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--horizon", type=int, default=100)
    trace_parser.add_argument("--out", type=Path, required=True)

    campaign_parser = sub.add_parser(
        "campaign", help="run/inspect declarative experiment campaigns"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    run_parser = campaign_sub.add_parser(
        "run", help="execute a TOML campaign spec into a result directory"
    )
    run_parser.add_argument("spec", type=Path, help="campaign TOML file")
    run_parser.add_argument(
        "--out", type=Path, required=True,
        help="campaign result directory (one sub-directory per cell)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="campaign-global worker processes: one persistent pool drains "
             "the whole (cell x repetition x controller) grid (0 = all "
             "cores; results are bit-identical for any worker count)",
    )
    run_parser.add_argument(
        "--scheduler", choices=("auto", "global", "cell"), default="auto",
        help="execution engine: 'global' = one work-stealing pool over "
             "every cell; 'cell' = legacy sequential cells with per-cell "
             "pools of --jobs workers; 'auto' (default) picks global "
             "whenever --jobs resolves to more than one worker",
    )
    run_parser.add_argument(
        "--resume", action="store_true",
        help="continue a killed campaign: finished cells are skipped, "
             "partial cells run only their missing items",
    )
    run_parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-execute crashed work items up to N extra rounds",
    )
    run_parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after executing N cells (smoke tests / staged runs)",
    )
    _add_telemetry_arguments(run_parser)

    status_parser = campaign_sub.add_parser(
        "status", help="show per-cell progress of a campaign directory"
    )
    status_parser.add_argument("out", type=Path, help="campaign directory")

    report_parser = campaign_sub.add_parser(
        "report", help="aggregate finished cells into report.md + results.csv"
    )
    report_parser.add_argument("out", type=Path, help="campaign directory")
    report_parser.add_argument(
        "--metric", default="mean_delay_ms",
        help="metric to tabulate (default: mean_delay_ms)",
    )

    serve_parser = sub.add_parser(
        "serve", help="run a controller as a long-lived decision service"
    )
    serve_parser.add_argument(
        "--controller", default="OL_GD",
        help="registry name of the served controller (default: OL_GD)",
    )
    serve_parser.add_argument(
        "--topology", default="gtitm",
        help="registry name of the network topology (default: gtitm)",
    )
    serve_parser.add_argument(
        "--workload", default="bursty",
        help="registry name of the anchoring workload (default: bursty)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=2020, metavar="N",
        help="world seed (default: 2020)",
    )
    serve_parser.add_argument(
        "--horizon", type=int, default=1000, metavar="N",
        help="synthetic-trace horizon the world is anchored on "
             "(serving itself is open-ended; default: 1000)",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=30, metavar="N",
        help="number of user requests / demand-vector size (default: 30)",
    )
    serve_parser.add_argument(
        "--services", type=int, default=4, metavar="N",
        help="number of service types (default: 4)",
    )
    serve_parser.add_argument(
        "--stations", type=int, default=None, metavar="N",
        help="number of base stations (default: topology default)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address of the TCP front-end (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0, metavar="P",
        help="TCP port of the line-JSON protocol (0 = ephemeral, "
             "announced on stdout; default: 0)",
    )
    serve_parser.add_argument(
        "--stdio", action="store_true",
        help="speak the line-JSON protocol over stdin/stdout instead of "
             "TCP (banner goes to stderr)",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="P",
        help="also serve GET /metrics (Prometheus text format) on this "
             "port (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=8, metavar="N",
        help="maximum concurrently-served protocol connections "
             "(default: 8)",
    )
    serve_parser.add_argument(
        "--buffer-limit", type=int, default=1024, metavar="N",
        help="maximum pending offers per slot; overflow is rejected and "
             "counted (default: 1024)",
    )
    serve_parser.add_argument(
        "--tick-interval", type=float, default=None, metavar="SECONDS",
        help="automatic slot ticks every SECONDS (default: slots advance "
             "only on explicit 'decide' requests)",
    )
    serve_parser.add_argument(
        "--predicted-demands", action="store_true",
        help="run the §V setting: the controller predicts demand "
             "internally instead of seeing the aggregated offers",
    )
    _add_checkpoint_arguments(serve_parser)
    _add_telemetry_arguments(serve_parser)
    return parser


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="persist completed (repetition, controller) runs under DIR "
             "(repro.state sweep snapshots); required by --resume and "
             "--checkpoint-every",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="load completed runs from --checkpoint-dir (after a manifest "
             "identity check) and execute only the missing ones",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="additionally snapshot each run every N completed slots, so "
             "an interrupted run resumes mid-horizon (requires "
             "--checkpoint-dir)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="write merged repro.obs telemetry (counters + stage timing "
             "histograms) as JSON; works for serial and --jobs runs "
             "(workers report snapshots that are merged here)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="write a JSONL span trace (schema: repro.obs.trace); spans "
             "are emitted by in-process execution, so use --jobs 1 for a "
             "complete trace",
    )


def _run_with_telemetry(args: argparse.Namespace, fn: Callable[[], int]) -> int:
    """Run ``fn`` under a CLI-installed telemetry registry when asked.

    Without ``--metrics-out``/``--trace`` this is a plain call — telemetry
    stays disabled and the hot paths keep their no-op spans.
    """
    metrics_out: Optional[Path] = getattr(args, "metrics_out", None)
    trace_path: Optional[Path] = getattr(args, "trace", None)
    if metrics_out is None and trace_path is None:
        return fn()
    writer = obs.TraceWriter(trace_path) if trace_path is not None else None
    registry = obs.MetricsRegistry(trace=writer)
    try:
        with obs.activate(registry):
            status = fn()
    finally:
        if writer is not None:
            writer.close()
    print("\ntelemetry:")
    print(registry.table())
    if metrics_out is not None:
        metrics_out.parent.mkdir(parents=True, exist_ok=True)
        metrics_out.write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote metrics -> {metrics_out}")
    if writer is not None:
        print(f"wrote {writer.n_events} trace events -> {trace_path}")
    return status


def _cmd_list() -> int:
    print("available figure experiments:")
    for figure_id, fn in sorted(FIGURES.items()):
        summary = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {figure_id}: {summary}")
    return 0


def _select_profile(args: argparse.Namespace):
    """The chosen profile, with CLI overrides (--jobs, checkpoints) applied."""
    profile = _PROFILES[args.profile]
    overrides: Dict[str, object] = {}
    if getattr(args, "jobs", None) is not None:
        overrides["n_jobs"] = args.jobs
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "checkpoint_dir", None) is not None:
        overrides["checkpoint_dir"] = str(args.checkpoint_dir)
    if getattr(args, "resume", False):
        overrides["resume"] = True
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if overrides:
        profile = dataclasses.replace(profile, **overrides)
    return profile


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.json and args.out is None:
        print("--json requires --out", file=sys.stderr)
        return 2
    try:
        profile = _select_profile(args)
    except ValueError as exc:  # e.g. --resume without --checkpoint-dir
        print(str(exc), file=sys.stderr)
        return 2
    figure = FIGURES[args.figure_id](profile)
    if args.plot:
        print(render_figure_plots(figure))
    else:
        print(render_figure(figure))
    if args.out is not None:
        written = figure_to_csv(figure, args.out)
        if args.json:
            json_path = Path(args.out) / f"{figure.figure_id}.json"
            figure_to_json(figure, json_path)
            written.append(json_path)
        print("\nwrote:")
        for path in written:
            print(f"  {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import (
        render_report_markdown,
        run_full_report,
        write_report,
    )

    try:
        profile = _select_profile(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = run_full_report(profile, only=args.only)
    print(render_report_markdown(report))
    if args.out is not None:
        path = write_report(report, args.out)
        print(f"wrote {path}")
    return 0 if report.all_hard_claims_pass else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    # Imported lazily: the campaign layer pulls in the whole scenario
    # stack, which `repro figure`/`repro trace` invocations never need.
    from repro.campaigns import (
        CampaignError,
        load_campaign_toml,
        campaign_status,
        run_campaign,
        render_campaign_report,
        write_campaign_report,
    )

    try:
        if args.campaign_command == "run":
            from repro.sim import RunConfig

            spec = load_campaign_toml(args.spec)
            result = run_campaign(
                spec,
                args.out,
                config=RunConfig(
                    jobs=args.jobs,
                    resume=args.resume,
                    retries=args.retries,
                    scheduler=args.scheduler,
                ),
                max_cells=args.max_cells,
            )
            print(campaign_status(args.out, spec).table())
            if not result.complete:
                print(
                    f"stopped early ({len(result.remaining)} cells left); "
                    f"continue with: repro campaign run {args.spec} "
                    f"--out {args.out} --resume"
                )
                return 1
            return 0
        if args.campaign_command == "status":
            status = campaign_status(args.out)
            print(status.table())
            return 0 if status.complete else 1
        if args.campaign_command == "report":
            report_path, csv_path, report = write_campaign_report(
                args.out, metric=args.metric
            )
            print(render_campaign_report(report, args.metric))
            print(f"\nwrote {report_path}\nwrote {csv_path}")
            return 0
    except (CampaignError, RuntimeError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled campaign command {args.campaign_command!r}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: serving pulls in the scenario/campaign stack,
    # which the figure/trace commands never need.
    from repro.serve import ServeConfig, serve

    try:
        config = ServeConfig(
            controller=args.controller,
            topology=args.topology,
            workload=args.workload,
            seed=args.seed,
            horizon=args.horizon,
            n_stations=args.stations,
            n_services=args.services,
            n_requests=args.requests,
            buffer_limit=args.buffer_limit,
            demands_known=not args.predicted_demands,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            tick_interval=args.tick_interval,
        )
    except (ValueError, KeyError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return serve(
        config,
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        metrics_port=args.metrics_port,
        max_connections=args.jobs,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    # Named stream from the seeding registry (not a bare default_rng):
    # the CLI trace draws stay isolated from any other consumer of the
    # same root seed, and seed validation comes for free.
    rng = RngRegistry(seed=args.seed).get("cli.trace")
    trace = synthesize_nyc_wifi_trace(
        args.hotspots, args.users, rng, horizon_slots=args.horizon
    )
    args.out.mkdir(parents=True, exist_ok=True)
    hotspot_path = args.out / "hotspots.csv"
    user_path = args.out / "users.csv"
    trace.to_csv(hotspot_path, user_path)
    print(f"wrote {trace.n_hotspots} hotspots -> {hotspot_path}")
    print(f"wrote {trace.n_users} users    -> {user_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _run_with_telemetry(args, lambda: _cmd_figure(args))
    if args.command == "report":
        return _run_with_telemetry(args, lambda: _cmd_report(args))
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "campaign":
        if getattr(args, "campaign_command", None) == "run":
            return _run_with_telemetry(args, lambda: _cmd_campaign(args))
        return _cmd_campaign(args)
    if args.command == "serve":
        return _run_with_telemetry(args, lambda: _cmd_serve(args))
    raise AssertionError(f"unhandled command {args.command!r}")
